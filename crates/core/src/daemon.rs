//! The Slate daemon (paper §IV-A2, §IV-B).
//!
//! The daemon is the server half of Slate's client–server architecture: it
//! funnels every client's operations into one device context, which is what
//! makes cross-process co-running possible at all. Per client it keeps a
//! *session*, served by its own thread, holding the hash table that maps
//! the client's opaque pointers to device allocations.
//!
//! Kernel launches run the full Slate pipeline, functionally: the source
//! injector (with its per-user compilation cache), first-run profiling and
//! classification, the workload-aware arbiter (Table I policy +
//! SM-demand partitioning), and the dispatch kernel with persistent
//! workers — including *live resizing* of a running kernel when a
//! complementary client arrives or departs.

use crate::channel::{LaunchCmd, Request, Response, SlatePtr};
use crate::classify::WorkloadClass;
use crate::dispatch::{DispatchHandle, Dispatcher};
use crate::error::SlateError;
use crate::injector::InjectionCache;
use crate::partition::partition;
use crate::policy::should_corun;
use crate::profile::ProfileTable;
use crate::transform::TransformedKernel;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use slate_gpu_sim::buffer::{DeviceMemoryPool, DevicePtr, GpuBuffer};
use slate_gpu_sim::device::{DeviceConfig, SmRange};
use slate_gpu_sim::workqueue::HyperQ;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// One kernel currently resident on the (functional) device.
struct ArbResident {
    session: u64,
    class: WorkloadClass,
    sm_demand: u32,
    pinned_solo: bool,
    range: SmRange,
    handle: DispatchHandle,
}

/// The workload-aware device arbiter: admits at most two complementary
/// kernels at a time and resizes residents on arrival and departure.
struct Arbiter {
    cfg: DeviceConfig,
    state: Mutex<Vec<ArbResident>>,
    freed: Condvar,
}

impl Arbiter {
    fn new(cfg: DeviceConfig) -> Self {
        Self {
            cfg,
            state: Mutex::new(Vec::new()),
            freed: Condvar::new(),
        }
    }

    /// Blocks until the kernel may run; returns its SM range. May shrink a
    /// resident kernel live (through its dispatch handle) to make room for
    /// a complementary newcomer.
    fn acquire(
        &self,
        session: u64,
        class: WorkloadClass,
        sm_demand: u32,
        pinned_solo: bool,
        handle: DispatchHandle,
    ) -> SmRange {
        let mut st = self.state.lock();
        loop {
            if st.is_empty() {
                let range = SmRange::all(self.cfg.num_sms);
                st.push(ArbResident {
                    session,
                    class,
                    sm_demand,
                    pinned_solo,
                    range,
                    handle,
                });
                return range;
            }
            if st.len() == 1
                && !pinned_solo
                && !st[0].pinned_solo
                && should_corun(st[0].class, class)
            {
                let part = partition(&self.cfg, st[0].sm_demand, sm_demand);
                // Live-resize the resident onto its share.
                st[0].handle.resize(part.a);
                st[0].range = part.a;
                st.push(ArbResident {
                    session,
                    class,
                    sm_demand,
                    pinned_solo,
                    range: part.b,
                    handle,
                });
                return part.b;
            }
            self.freed.wait(&mut st);
        }
    }

    /// Releases the caller's residency; the surviving co-runner grows to
    /// the whole device.
    fn release(&self, session: u64) {
        let mut st = self.state.lock();
        st.retain(|r| r.session != session);
        if let Some(surv) = st.first_mut() {
            let full = SmRange::all(self.cfg.num_sms);
            if surv.range != full {
                surv.handle.resize(full);
                surv.range = full;
            }
        }
        self.freed.notify_all();
    }
}

/// Shared daemon state.
struct DaemonShared {
    cfg: DeviceConfig,
    pool: Mutex<DeviceMemoryPool>,
    injector: Mutex<InjectionCache>,
    profiles: Mutex<ProfileTable>,
    arbiter: Arbiter,
    launches: Mutex<u64>,
    /// Hardware work-queue allocator for the funnelled server context.
    hyperq: Mutex<HyperQ>,
}

/// A running Slate daemon. Dropping the handle after every client
/// disconnected shuts the daemon down.
pub struct SlateDaemon {
    shared: Arc<DaemonShared>,
    next_session: Mutex<u64>,
    sessions: Mutex<Vec<JoinHandle<()>>>,
}

/// Client-side connection to the daemon — the transport `api::SlateClient`
/// wraps.
pub struct Connection {
    /// Session id assigned by the daemon.
    pub session: u64,
    /// Command pipe, client-to-daemon.
    pub tx: Sender<Request>,
    /// Response pipe, daemon-to-client.
    pub rx: Receiver<Response>,
}

impl SlateDaemon {
    /// Starts a daemon managing a functional device of `cfg` geometry with
    /// `mem_capacity` bytes of device memory.
    pub fn start(cfg: DeviceConfig, mem_capacity: u64) -> Arc<Self> {
        Self::start_with_profiles(cfg, mem_capacity, ProfileTable::new())
    }

    /// Starts a daemon seeded with a profile table from a previous run
    /// (the paper's daemon "records kernel profiles obtained from its
    /// previous runs").
    pub fn start_with_profiles(
        cfg: DeviceConfig,
        mem_capacity: u64,
        profiles: ProfileTable,
    ) -> Arc<Self> {
        Arc::new(Self {
            shared: Arc::new(DaemonShared {
                cfg: cfg.clone(),
                pool: Mutex::new(DeviceMemoryPool::new(mem_capacity)),
                injector: Mutex::new(InjectionCache::new()),
                profiles: Mutex::new(profiles),
                arbiter: Arbiter::new(cfg),
                launches: Mutex::new(0),
                hyperq: Mutex::new(HyperQ::with_default_connections()),
            }),
            next_session: Mutex::new(0),
            sessions: Mutex::new(Vec::new()),
        })
    }

    /// Snapshot of the kernel profile table (persist it with
    /// [`ProfileTable::save`] and reload through
    /// [`SlateDaemon::start_with_profiles`]).
    pub fn profiles(&self) -> ProfileTable {
        self.shared.profiles.lock().clone()
    }

    /// Accepts a new client; spawns its session thread (one per process,
    /// kept alive until the process disconnects — §IV-A2).
    pub fn connect(self: &Arc<Self>, user: &str) -> Connection {
        let session = {
            let mut n = self.next_session.lock();
            *n += 1;
            *n
        };
        let (tx_req, rx_req) = unbounded::<Request>();
        let (tx_resp, rx_resp) = unbounded::<Response>();
        let shared = self.shared.clone();
        let user = user.to_string();
        let handle = std::thread::Builder::new()
            .name(format!("slate-session-{session}"))
            .spawn(move || session_loop(shared, session, user, rx_req, tx_resp))
            .expect("spawn session thread");
        self.sessions.lock().push(handle);
        Connection {
            session,
            tx: tx_req,
            rx: rx_resp,
        }
    }

    /// Total kernel launches served (daemon statistics).
    pub fn launches_served(&self) -> u64 {
        *self.shared.launches.lock()
    }

    /// Injection-cache statistics: (hits, misses).
    pub fn injection_stats(&self) -> (u64, u64) {
        self.shared.injector.lock().stats()
    }

    /// Live device allocations across all sessions.
    pub fn live_allocations(&self) -> usize {
        self.shared.pool.lock().live_allocations()
    }

    /// Hardware work-queue lanes registered on the funnelled context
    /// (one per (session, stream) the daemon has served).
    pub fn hyperq_lanes(&self) -> usize {
        self.shared.hyperq.lock().lanes()
    }

    /// Waits for all session threads to finish (after clients disconnect).
    pub fn join(&self) {
        let handles: Vec<_> = std::mem::take(&mut *self.sessions.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Per-session state: the pointer-mapping hash table of §IV-A1.
struct SessionState {
    ptr_map: HashMap<SlatePtr, DevicePtr>,
    next_ptr: u64,
}

/// A launch job forwarded to a stream worker thread.
struct StreamJob {
    kernel: Arc<dyn slate_kernels::kernel::GpuKernel>,
    task_size: u32,
    pinned_solo: bool,
}

/// One non-default CUDA stream of a session: its own in-order queue served
/// by a dedicated thread (the paper's per-(process, stream) queues).
struct StreamLane {
    tx: Sender<StreamJob>,
    barrier_tx: Sender<Sender<()>>,
    handle: JoinHandle<()>,
}

fn spawn_stream_lane(
    shared: Arc<DaemonShared>,
    lease: u64,
    errors: Arc<Mutex<Vec<String>>>,
) -> StreamLane {
    let (tx, rx) = unbounded::<StreamJob>();
    let (barrier_tx, barrier_rx) = unbounded::<Sender<()>>();
    let handle = std::thread::spawn(move || loop {
        crossbeam::channel::select! {
            recv(rx) -> job => match job {
                Ok(job) => {
                    if let Err(e) = execute_kernel(
                        &shared, lease, job.kernel, job.task_size, job.pinned_solo,
                    ) {
                        errors.lock().push(e);
                    }
                }
                Err(_) => break,
            },
            recv(barrier_rx) -> ack => match ack {
                Ok(ack) => {
                    // Drain any launches enqueued before the barrier.
                    while let Ok(job) = rx.try_recv() {
                        if let Err(e) = execute_kernel(
                            &shared, lease, job.kernel, job.task_size, job.pinned_solo,
                        ) {
                            errors.lock().push(e);
                        }
                    }
                    let _ = ack.send(());
                }
                Err(_) => break,
            },
        }
    });
    StreamLane {
        tx,
        barrier_tx,
        handle,
    }
}

fn session_loop(
    shared: Arc<DaemonShared>,
    session: u64,
    user: String,
    rx: Receiver<Request>,
    tx: Sender<Response>,
) {
    let mut st = SessionState {
        ptr_map: HashMap::new(),
        next_ptr: session << 32,
    };
    let mut lanes: HashMap<u32, StreamLane> = HashMap::new();
    let stream_errors: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let shutdown_lanes = |lanes: &mut HashMap<u32, StreamLane>| {
        for (_, lane) in lanes.drain() {
            drop(lane.tx);
            drop(lane.barrier_tx);
            let _ = lane.handle.join();
        }
    };
    while let Ok(req) = rx.recv() {
        let resp = match req {
            Request::Malloc(bytes) => match shared.pool.lock().alloc(bytes) {
                Ok(dev) => {
                    st.next_ptr += 1;
                    let p = SlatePtr(st.next_ptr);
                    st.ptr_map.insert(p, dev);
                    Response::Ptr(p)
                }
                Err(_) => {
                    Response::Err(SlateError::OutOfMemory { requested: bytes }.to_wire())
                }
            },
            Request::Free(p) => match st.ptr_map.remove(&p) {
                Some(dev) => match shared.pool.lock().free(dev) {
                    Ok(()) => Response::Ok,
                    Err(e) => Response::Err(SlateError::Other(e).to_wire()),
                },
                None => {
                    Response::Err(SlateError::InvalidPointer { ptr: p.0 }.to_wire())
                }
            },
            Request::MemcpyH2D { ptr, offset, data } => {
                match resolve(&shared, &st, ptr) {
                    Ok(buf) => {
                        buf.copy_from_host(offset, &data);
                        Response::Ok
                    }
                    Err(e) => Response::Err(e),
                }
            }
            Request::MemcpyD2H { ptr, offset, len } => match resolve(&shared, &st, ptr) {
                Ok(buf) => {
                    let mut out = vec![0u8; len];
                    buf.copy_to_host(offset, &mut out);
                    Response::Data(out.into())
                }
                Err(e) => Response::Err(e),
            },
            Request::Launch(cmd) => {
                let stream = cmd.stream;
                match prepare_launch(&shared, &user, &st, cmd) {
                    Ok((kernel, task_size, pinned_solo)) => {
                        if stream == 0 {
                            // Default stream: in-order on the session thread.
                            let lease = session << 16;
                            match execute_kernel(&shared, lease, kernel, task_size, pinned_solo)
                            {
                                Ok(()) => continue,
                                Err(e) => Response::Err(e),
                            }
                        } else {
                            let lane = lanes.entry(stream).or_insert_with(|| {
                                spawn_stream_lane(
                                    shared.clone(),
                                    (session << 16) | stream as u64,
                                    stream_errors.clone(),
                                )
                            });
                            let _ = lane.tx.send(StreamJob {
                                kernel,
                                task_size,
                                pinned_solo,
                            });
                            continue; // asynchronous: no reply
                        }
                    }
                    Err(e) => Response::Err(e),
                }
            }
            Request::Sync => {
                // Fence every stream lane, then surface collected errors.
                for lane in lanes.values() {
                    let (ack_tx, ack_rx) = unbounded::<()>();
                    if lane.barrier_tx.send(ack_tx).is_ok() {
                        let _ = ack_rx.recv();
                    }
                }
                let errs: Vec<String> = std::mem::take(&mut *stream_errors.lock());
                for e in errs {
                    let _ = tx.send(Response::Err(e));
                }
                Response::Ok
            }
            Request::Disconnect => {
                shutdown_lanes(&mut lanes);
                // Free everything the client leaked (process teardown).
                let mut pool = shared.pool.lock();
                for (_, dev) in st.ptr_map.drain() {
                    let _ = pool.free(dev);
                }
                let _ = tx.send(Response::Ok);
                break;
            }
        };
        if tx.send(resp).is_err() {
            break;
        }
    }
    // The client vanished (process died or dropped its connection without
    // Disconnect): tear down its streams and reclaim its device memory.
    shutdown_lanes(&mut lanes);
    let mut pool = shared.pool.lock();
    for (_, dev) in st.ptr_map.drain() {
        let _ = pool.free(dev);
    }
}

fn resolve(
    shared: &DaemonShared,
    st: &SessionState,
    ptr: SlatePtr,
) -> Result<Arc<GpuBuffer>, String> {
    let dev = st
        .ptr_map
        .get(&ptr)
        .ok_or_else(|| SlateError::InvalidPointer { ptr: ptr.0 }.to_wire())?;
    shared.pool.lock().buffer(*dev)
}

/// Resolves pointers, runs the injection pipeline, and builds the kernel —
/// everything that needs the session's state.
fn prepare_launch(
    shared: &Arc<DaemonShared>,
    user: &str,
    st: &SessionState,
    cmd: LaunchCmd,
) -> Result<(Arc<dyn slate_kernels::kernel::GpuKernel>, u32, bool), String> {
    // Resolve the client's pointers through the session hash table.
    let buffers = cmd
        .ptrs
        .iter()
        .map(|&p| resolve(shared, st, p))
        .collect::<Result<Vec<_>, _>>()?;
    let kernel = (cmd.factory)(buffers);

    // Source injection through the per-user cache (the NVRTC stage).
    if let Some(src) = &cmd.source {
        shared
            .injector
            .lock()
            .get_or_inject(user, src, cmd.task_size);
    }
    Ok((kernel, cmd.task_size, cmd.pinned_solo))
}

/// Profiles, transforms and dispatches a prepared kernel under the
/// workload-aware arbiter. `lease` identifies the (session, stream) queue.
fn execute_kernel(
    shared: &Arc<DaemonShared>,
    lease: u64,
    kernel: Arc<dyn slate_kernels::kernel::GpuKernel>,
    task_size: u32,
    pinned_solo: bool,
) -> Result<(), String> {
    // All sessions share the daemon's single device context; each
    // (session, stream) lane gets a Hyper-Q connection on it.
    const SERVER_CONTEXT: u64 = 0;
    shared
        .hyperq
        .lock()
        .assign(SERVER_CONTEXT, (lease & 0xffff_ffff) as u32);

    // First-run profiling and classification.
    let perf = kernel.perf();
    let grid_blocks = kernel.grid().total_blocks();
    let (class, demand) = {
        let mut table = shared.profiles.lock();
        let p = table.get_or_profile(&shared.cfg, &perf, grid_blocks.max(10_000));
        (p.class, p.sm_demand)
    };

    // Transform and dispatch under the workload-aware arbiter.
    let transformed = TransformedKernel::new(kernel);
    let dispatcher = Dispatcher::new(
        shared.cfg.clone(),
        transformed,
        task_size,
        SmRange::all(shared.cfg.num_sms),
    );
    let handle = dispatcher.handle();
    let range = shared
        .arbiter
        .acquire(lease, class, demand, pinned_solo, handle.clone());
    if range != SmRange::all(shared.cfg.num_sms) {
        // Bind the first worker launch onto the acquired partition (the
        // raced retreat at worst costs one immediate relaunch).
        handle.resize(range);
    }
    let out = dispatcher.run();
    debug_assert!(out.blocks == grid_blocks);
    shared.arbiter.release(lease);
    *shared.launches.lock() += 1;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SlateClient;
    use slate_kernels::grid::{BlockCoord, GridDim};
    use slate_kernels::kernel::GpuKernel;
    use slate_gpu_sim::perf::KernelPerf;

    /// out[i] = in[i] * 2 over a 1-D grid of 128-wide blocks.
    struct Double {
        n: usize,
        input: Arc<GpuBuffer>,
        out: Arc<GpuBuffer>,
    }
    impl GpuKernel for Double {
        fn name(&self) -> &str {
            "double"
        }
        fn grid(&self) -> GridDim {
            GridDim::d1((self.n as u32).div_ceil(128).max(1))
        }
        fn perf(&self) -> KernelPerf {
            KernelPerf::synthetic("double", 500.0, 1024.0)
        }
        fn run_block(&self, b: BlockCoord) {
            let lo = b.x as usize * 128;
            for i in lo..(lo + 128).min(self.n) {
                self.out.store_f32(i, self.input.load_f32(i) * 2.0);
            }
        }
    }

    #[test]
    fn end_to_end_malloc_copy_launch_sync_readback() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(4), 1 << 24);
        let client = SlateClient::new(daemon.connect("tester"));
        let n = 1000usize;
        let input: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let in_ptr = client.malloc((n * 4) as u64).unwrap();
        let out_ptr = client.malloc((n * 4) as u64).unwrap();
        let bytes: Vec<u8> = input.iter().flat_map(|f| f.to_le_bytes()).collect();
        client.memcpy_h2d(in_ptr, 0, bytes.into()).unwrap();
        client
            .launch_with(
                vec![in_ptr, out_ptr],
                10,
                None,
                move |bufs| -> Arc<dyn GpuKernel> {
                    Arc::new(Double {
                        n,
                        input: bufs[0].clone(),
                        out: bufs[1].clone(),
                    })
                },
            )
            .unwrap();
        client.synchronize().unwrap();
        let back = client.memcpy_d2h(out_ptr, 0, n * 4).unwrap();
        for i in 0..n {
            let v = f32::from_le_bytes(back[i * 4..i * 4 + 4].try_into().unwrap());
            assert_eq!(v, i as f32 * 2.0, "element {i}");
        }
        client.free(in_ptr).unwrap();
        client.free(out_ptr).unwrap();
        assert_eq!(daemon.live_allocations(), 0);
        assert_eq!(daemon.launches_served(), 1);
        client.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn streams_execute_concurrently_and_sync_fences_all() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(4), 1 << 24);
        let client = SlateClient::new(daemon.connect("streamer"));
        let n = 4_000usize;
        // Four streams, each doubling its own buffer; plus the default
        // stream touching a fifth buffer.
        let mut ptrs = Vec::new();
        for s in 0..5u32 {
            let p = client.malloc((n * 4) as u64).unwrap();
            let init: Vec<f32> = (0..n).map(|i| (i + s as usize) as f32).collect();
            client.upload_f32(p, &init).unwrap();
            ptrs.push(p);
        }
        for (s, &p) in ptrs.iter().enumerate() {
            let launch = move |bufs: Vec<Arc<GpuBuffer>>| -> Arc<dyn GpuKernel> {
                Arc::new(Double {
                    n,
                    input: bufs[0].clone(),
                    out: bufs[0].clone(),
                })
            };
            if s == 0 {
                client.launch_with(vec![p], 10, None, launch).unwrap();
            } else {
                client
                    .launch_on_stream(s as u32, vec![p], 10, launch)
                    .unwrap();
            }
        }
        client.synchronize().unwrap();
        for (s, &p) in ptrs.iter().enumerate() {
            let out = client.download_f32(p, n).unwrap();
            for i in (0..n).step_by(397) {
                assert_eq!(out[i], 2.0 * (i + s) as f32, "stream {s} element {i}");
            }
        }
        assert_eq!(daemon.launches_served(), 5);
        client.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn same_stream_launches_are_ordered() {
        // Two doublings on one stream: must observe x4, proving in-order
        // execution within a stream.
        let daemon = SlateDaemon::start(DeviceConfig::tiny(4), 1 << 22);
        let client = SlateClient::new(daemon.connect("ordered"));
        let n = 2_000usize;
        let p = client.malloc((n * 4) as u64).unwrap();
        client.upload_f32(p, &vec![1.0f32; n]).unwrap();
        for _ in 0..2 {
            client
                .launch_on_stream(3, vec![p], 10, move |bufs| -> Arc<dyn GpuKernel> {
                    Arc::new(Double {
                        n,
                        input: bufs[0].clone(),
                        out: bufs[0].clone(),
                    })
                })
                .unwrap();
        }
        client.synchronize().unwrap();
        let out = client.download_f32(p, n).unwrap();
        assert!(out.iter().step_by(101).all(|&v| v == 4.0));
        client.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn stream_launch_error_surfaces_at_sync() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1 << 20);
        let client = SlateClient::new(daemon.connect("oops"));
        let good = client.malloc(1024).unwrap();
        // Bad pointer on a non-zero stream: prepare fails synchronously in
        // the session, so the error is queued ahead of the sync Ok.
        client
            .launch_on_stream(7, vec![SlatePtr(0xbad)], 10, move |bufs| -> Arc<dyn GpuKernel> {
                Arc::new(Double {
                    n: 16,
                    input: bufs[0].clone(),
                    out: bufs[0].clone(),
                })
            })
            .unwrap();
        assert!(client.synchronize().is_err());
        // Session remains healthy.
        client.upload_f32(good, &[9.0]).unwrap();
        assert_eq!(client.download_f32(good, 1).unwrap(), vec![9.0]);
        client.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn invalid_pointer_is_rejected() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1 << 20);
        let client = SlateClient::new(daemon.connect("tester"));
        assert!(client.memcpy_d2h(SlatePtr(0xdead), 0, 4).is_err());
        assert!(client.free(SlatePtr(0xdead)).is_err());
        client.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn sessions_are_isolated() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1 << 20);
        let a = SlateClient::new(daemon.connect("alice"));
        let b = SlateClient::new(daemon.connect("bob"));
        let pa = a.malloc(64).unwrap();
        // Bob cannot touch Alice's allocation handle.
        assert!(b.memcpy_d2h(pa, 0, 4).is_err());
        a.disconnect().unwrap();
        b.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn dropped_client_reclaims_allocations() {
        // No Disconnect: the client's process "dies"; the session thread
        // must still reclaim its device memory.
        let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1 << 20);
        {
            let client = SlateClient::new(daemon.connect("vanishing"));
            let _a = client.malloc(256).unwrap();
            let _b = client.malloc(256).unwrap();
            assert_eq!(daemon.live_allocations(), 2);
            drop(client); // Connection dropped, no Disconnect request
        }
        daemon.join();
        assert_eq!(daemon.live_allocations(), 0);
    }

    #[test]
    fn profile_table_survives_daemon_restarts() {
        let dir = std::env::temp_dir().join("slate-daemon-profiles");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profiles.json");
        let n = 2_000usize;
        let run_once = |profiles| {
            let daemon =
                SlateDaemon::start_with_profiles(DeviceConfig::tiny(4), 1 << 22, profiles);
            let client = SlateClient::new(daemon.connect("persist"));
            let input = client.malloc((n * 4) as u64).unwrap();
            let out = client.malloc((n * 4) as u64).unwrap();
            client
                .launch_with(vec![input, out], 10, None, move |bufs| {
                    Arc::new(Double {
                        n,
                        input: bufs[0].clone(),
                        out: bufs[1].clone(),
                    }) as Arc<dyn GpuKernel>
                })
                .unwrap();
            client.synchronize().unwrap();
            client.disconnect().unwrap();
            daemon.join();
            daemon.profiles()
        };
        let table = run_once(crate::profile::ProfileTable::new());
        assert_eq!(table.len(), 1);
        table.save(&path).unwrap();
        // Second daemon run: seeded table, kernel is already profiled.
        let reloaded = crate::profile::ProfileTable::load(&path).unwrap();
        assert!(reloaded.get("double").is_some());
        let table2 = run_once(reloaded);
        assert_eq!(table2.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disconnect_frees_leaked_allocations() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1 << 20);
        let client = SlateClient::new(daemon.connect("leaky"));
        let _p1 = client.malloc(512).unwrap();
        let _p2 = client.malloc(512).unwrap();
        assert_eq!(daemon.live_allocations(), 2);
        client.disconnect().unwrap();
        daemon.join();
        assert_eq!(daemon.live_allocations(), 0);
    }
}
