//! Multiprocessing demo: two client processes share the GPU through the
//! Slate daemon, co-running complementary kernels with live resizing.
//!
//! Process A runs Transpose (memory-heavy, class H_M); process B runs
//! QuasiRandom (low-intensity, class L_C). The Table I policy marks them
//! complementary, so the daemon's arbiter partitions the SMs and — when one
//! finishes — grows the survivor through the dispatch kernel's
//! retreat/relaunch mechanism. The example validates both results and
//! prints daemon statistics.
//!
//! ```text
//! cargo run --example multiprocess_daemon
//! ```

use slate_core::api::SlateClient;
use slate_core::daemon::SlateDaemon;
use slate_gpu_sim::device::DeviceConfig;
use slate_kernels::quasirandom::{direction_table, point, QuasiRandomKernel, DIMENSIONS};
use slate_kernels::transpose::TransposeKernel;
use std::sync::Arc;

fn main() {
    let daemon = SlateDaemon::start(DeviceConfig::titan_xp(), 12 << 30);

    // Process A: tiled transposes.
    let daemon_a = daemon.clone();
    let proc_a = std::thread::spawn(move || {
        let client = SlateClient::new(daemon_a.connect("transpose-app").unwrap());
        let (rows, cols) = (512u32, 384u32);
        let n = (rows * cols) as usize;
        let input: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let d_in = client.malloc((n * 4) as u64).unwrap();
        let d_out = client.malloc((n * 4) as u64).unwrap();
        client.upload_f32(d_in, &input).unwrap();
        for _rep in 0..4 {
            client
                .launch_with(vec![d_in, d_out], 10, None, move |bufs| {
                    Arc::new(TransposeKernel::new(
                        rows,
                        cols,
                        bufs[0].clone(),
                        bufs[1].clone(),
                    )) as Arc<dyn slate_kernels::GpuKernel>
                })
                .unwrap();
        }
        client.synchronize().unwrap();
        let out = client.download_f32(d_out, n).unwrap();
        for r in (0..rows as usize).step_by(97) {
            for c in (0..cols as usize).step_by(41) {
                assert_eq!(
                    out[c * rows as usize + r],
                    input[r * cols as usize + c],
                    "transpose mismatch at ({r},{c})"
                );
            }
        }
        client.disconnect().unwrap();
        println!("[transpose-app] 4 transposes verified");
    });

    // Process B: quasirandom sequence generation.
    let daemon_b = daemon.clone();
    let proc_b = std::thread::spawn(move || {
        let client = SlateClient::new(daemon_b.connect("quasirandom-app").unwrap());
        let n = 50_000u64;
        let d_out = client.malloc(n * DIMENSIONS as u64 * 4).unwrap();
        for _rep in 0..4 {
            client
                .launch_with(vec![d_out], 10, None, move |bufs| {
                    Arc::new(QuasiRandomKernel::new(n, bufs[0].clone()))
                        as Arc<dyn slate_kernels::GpuKernel>
                })
                .unwrap();
        }
        client.synchronize().unwrap();
        let out = client
            .download_f32(d_out, (n * DIMENSIONS as u64) as usize)
            .unwrap();
        let table = direction_table();
        for dim in 0..DIMENSIONS {
            for i in [0u64, 1, n / 3, n - 1] {
                assert_eq!(
                    out[(dim as u64 * n + i) as usize],
                    point(&table, dim, i),
                    "quasirandom mismatch at dim {dim}, index {i}"
                );
            }
        }
        client.disconnect().unwrap();
        println!("[quasirandom-app] 4 generations verified");
    });

    proc_a.join().unwrap();
    proc_b.join().unwrap();
    daemon.join();

    println!(
        "daemon served {} kernel launches from 2 client processes",
        daemon.launches_served()
    );
    assert_eq!(daemon.launches_served(), 8);
    assert_eq!(daemon.live_allocations(), 0, "all device memory reclaimed");
    println!("both processes shared one device context — Slate multiprocessing works.");
}
