//! Offline stand-in for `serde_json` over the vendored `serde` stub.
//!
//! Provides the `to_string` / `to_string_pretty` / `from_str` entry points
//! the workspace uses, backed by the reduced JSON data model in the
//! vendored `serde` crate.

pub use serde::{JsonError as Error, JsonValue as Value};

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes a value to indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    let v = serde::parse(&compact)?;
    let mut out = String::new();
    pretty(&v, 0, &mut out);
    Ok(out)
}

/// Parses JSON text into a value of type `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = serde::parse(s)?;
    T::deserialize_json(&v)
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn pretty(v: &Value, depth: usize, out: &mut String) {
    match v {
        Value::Obj(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, fv)) in entries.iter().enumerate() {
                indent(out, depth + 1);
                serde::ser_key(out, k);
                out.push(' ');
                pretty(fv, depth + 1, out);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(out, depth);
            out.push('}');
        }
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                indent(out, depth + 1);
                pretty(item, depth + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(out, depth);
            out.push(']');
        }
        Value::Obj(_) => out.push_str("{}"),
        Value::Arr(_) => out.push_str("[]"),
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => out.push_str(n),
        Value::Str(s) => serde::ser_str(out, s),
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn pretty_output_reparses() {
        let mut m = HashMap::new();
        m.insert("alpha".to_string(), vec![1u32, 2, 3]);
        let pretty = super::to_string_pretty(&m).unwrap();
        assert!(pretty.contains('\n'));
        let back: HashMap<String, Vec<u32>> = super::from_str(&pretty).unwrap();
        assert_eq!(back, m);
    }
}
