//! The Slate client API (paper §IV-A1).
//!
//! "The *Slate* API acts as a wrapper for basic CUDA functions" — this is
//! the library an application links instead of the CUDA runtime. Every call
//! round-trips the command pipe to the daemon except kernel launches, which
//! are asynchronous exactly like CUDA launches; `synchronize` drains them.
//!
//! | CUDA | Slate |
//! |------|-------|
//! | `cudaMalloc` | [`SlateClient::malloc`] |
//! | `cudaFree` | [`SlateClient::free`] |
//! | `cudaMemcpy(H2D)` | [`SlateClient::memcpy_h2d`] |
//! | `cudaMemcpy(D2H)` | [`SlateClient::memcpy_d2h`] |
//! | `<<<grid, block>>>` | [`SlateClient::launch_with`] |
//! | `cudaDeviceSynchronize` | [`SlateClient::synchronize`] |

use crate::channel::{KernelFactory, LaunchCmd, Request, Response, SlatePtr};
use crate::daemon::{Connection, ResumeToken, SlateDaemon};
use crate::error::SlateError;
use bytes::Bytes;
use slate_gpu_sim::buffer::GpuBuffer;
use slate_kernels::kernel::GpuKernel;
use slate_kernels::workload::SloClass;
use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A kernel factory that can be invoked more than once — the requirement
/// for a launch to be crash-replayable: if the daemon dies before
/// acknowledging the work, the client resubmits the launch (same id)
/// after [`SlateDaemon::resume`], and the daemon rebuilds the kernel.
pub type ReplayFactory =
    Arc<dyn Fn(Vec<Arc<GpuBuffer>>) -> Arc<dyn GpuKernel> + Send + Sync + 'static>;

/// One unacknowledged replayable launch, kept client-side until a
/// `synchronize` confirms it and resubmitted verbatim (same launch id)
/// after a crash resumption.
struct ReplayLaunch {
    launch_id: u64,
    ptrs: Vec<SlatePtr>,
    factory: ReplayFactory,
    task_size: u32,
    source: Option<String>,
    pinned_solo: bool,
    stream: u32,
    deadline_ms: Option<u64>,
}

impl ReplayLaunch {
    fn to_cmd(&self) -> LaunchCmd {
        let f = self.factory.clone();
        LaunchCmd {
            launch_id: self.launch_id,
            ptrs: self.ptrs.clone(),
            factory: Box::new(move |bufs| f(bufs)),
            task_size: self.task_size,
            source: self.source.clone(),
            pinned_solo: self.pinned_solo,
            stream: self.stream,
            deadline_ms: self.deadline_ms,
        }
    }
}

/// Draws the next decorrelated-jitter backoff: uniformly random in
/// `[base, 3 * prev]`, clamped to `[base, cap]`. Unlike full jitter this
/// keeps a memory of the previous sleep (`prev`), so the expected backoff
/// still grows geometrically while synchronized clients spread out —
/// the cure for the thundering herd after a shed or daemon restart.
///
/// `rng_state` is a caller-held xorshift64* state; seed it once (any
/// value) and pass it back for each draw. Deterministic for a fixed seed.
pub fn decorrelated_jitter(
    base: Duration,
    prev: Duration,
    cap: Duration,
    rng_state: &mut u64,
) -> Duration {
    fn xorshift64star(state: &mut u64) -> u64 {
        let mut x = *state | 1; // the all-zero state is a fixpoint; avoid it
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    let base_n = base.as_nanos().min(u128::from(u64::MAX)) as u64;
    let prev_n = prev.as_nanos().min(u128::from(u64::MAX)) as u64;
    let cap_n = cap.as_nanos().min(u128::from(u64::MAX)) as u64;
    let span = prev_n
        .saturating_mul(3)
        .saturating_sub(base_n)
        .saturating_add(1);
    let drawn = base_n.saturating_add(xorshift64star(rng_state) % span);
    Duration::from_nanos(drawn.clamp(base_n.min(cap_n), cap_n))
}

/// Opt-in bounded retry for transient daemon rejections (see
/// [`SlateError::is_transient`]). Without a jitter seed, retries sleep
/// `base_delay * 2^attempt`, capped at `max_delay`; with one, sleeps are
/// drawn by [`decorrelated_jitter`] instead. Either way, a
/// [`SlateError::Overloaded`] rejection's `retry_after_ms` hint is honored
/// as a floor on the sleep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Ceiling for the exponential backoff.
    pub max_delay: Duration,
    /// Seed for decorrelated-jitter backoff; `None` keeps the plain
    /// deterministic exponential schedule.
    pub jitter_seed: Option<u64>,
}

impl RetryPolicy {
    /// `max_attempts` tries with backoff doubling from 1 ms up to 100 ms.
    pub fn with_attempts(max_attempts: u32) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(100),
            jitter_seed: None,
        }
    }

    /// Enables decorrelated-jitter backoff under `seed` (builder style).
    /// Different clients should use different seeds — that is the point.
    pub fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// Backoff to sleep before retry number `retry` (0-based) on the
    /// plain exponential schedule (ignores the jitter seed).
    pub fn delay_for(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.min(16);
        self.base_delay.saturating_mul(factor).min(self.max_delay)
    }

    /// Runs `op` up to `max_attempts` times, sleeping the backoff between
    /// attempts, retrying only while the error is transient. An
    /// [`SlateError::Overloaded`] rejection's `retry_after_ms` floors the
    /// sleep: the daemon knows its backlog better than the client does.
    pub fn run<T>(&self, mut op: impl FnMut() -> Result<T, SlateError>) -> Result<T, SlateError> {
        let mut retry = 0;
        let mut rng = self.jitter_seed.map(|s| s ^ 0x9e37_79b9_7f4a_7c15);
        let mut prev = self.base_delay;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && retry + 1 < self.max_attempts => {
                    let mut delay = match rng.as_mut() {
                        Some(state) => {
                            let d =
                                decorrelated_jitter(self.base_delay, prev, self.max_delay, state);
                            prev = d;
                            d
                        }
                        None => self.delay_for(retry),
                    };
                    if let SlateError::Overloaded { retry_after_ms } = e {
                        delay = delay.max(Duration::from_millis(retry_after_ms));
                    }
                    std::thread::sleep(delay);
                    retry += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Circuit-breaker observable states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// The breaker tripped; requests fail fast with
    /// [`SlateError::Overloaded`] until the cooldown elapses.
    Open,
    /// Cooldown elapsed: the next request probes the daemon. Success
    /// closes the breaker; another overload reopens it for a full
    /// cooldown.
    HalfOpen,
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive overload-class errors ([`SlateError::is_overload`]:
    /// `Overloaded` or `Timeout`) that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before the half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown: Duration::from_millis(100),
        }
    }
}

/// A client-side circuit breaker: after `failure_threshold` consecutive
/// overload-class errors it opens and fails fast — the kindest thing a
/// client can do for a saturated daemon is stop hammering it. Single
/// threaded (`Cell`-based), like [`SlateClient`] itself.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    consecutive: Cell<u32>,
    opened_at: Cell<Option<Instant>>,
}

impl CircuitBreaker {
    /// A closed breaker under `config`.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            consecutive: Cell::new(0),
            opened_at: Cell::new(None),
        }
    }

    /// The current state (time-dependent: an open breaker becomes
    /// half-open once the cooldown elapses).
    pub fn state(&self) -> BreakerState {
        match self.opened_at.get() {
            None => BreakerState::Closed,
            Some(t) if t.elapsed() < self.config.cooldown => BreakerState::Open,
            Some(_) => BreakerState::HalfOpen,
        }
    }

    /// Gate for an outgoing request: `Err` (fail fast, with the remaining
    /// cooldown as the retry hint) while open, `Ok` when closed or
    /// half-open (the probe is allowed through).
    pub fn check(&self) -> Result<(), SlateError> {
        match self.state() {
            BreakerState::Open => {
                let opened = self.opened_at.get().expect("open implies opened_at");
                let remaining = self.config.cooldown.saturating_sub(opened.elapsed());
                Err(SlateError::Overloaded {
                    retry_after_ms: (remaining.as_millis() as u64).max(1),
                })
            }
            BreakerState::Closed | BreakerState::HalfOpen => Ok(()),
        }
    }

    /// Feeds a request outcome into the state machine. Successes close
    /// the breaker; overload-class errors count toward the threshold (and
    /// immediately reopen a half-open breaker); other errors reset the
    /// streak — the daemon answered, it is not saturated.
    pub fn record<T>(&self, outcome: &Result<T, SlateError>) {
        match outcome {
            Ok(_) => {
                self.consecutive.set(0);
                self.opened_at.set(None);
            }
            Err(e) if e.is_overload() => {
                let n = self.consecutive.get() + 1;
                self.consecutive.set(n);
                let reopen = matches!(self.state(), BreakerState::HalfOpen);
                if reopen || n >= self.config.failure_threshold {
                    self.opened_at.set(Some(Instant::now()));
                }
            }
            Err(_) => {
                self.consecutive.set(0);
            }
        }
    }
}

/// A client connection to the Slate daemon, wrapping the command pipe with
/// the CUDA-like API surface.
pub struct SlateClient {
    conn: RefCell<Connection>,
    pending_launches: Cell<u64>,
    /// Next client-assigned launch id; monotonic for the session's
    /// lifetime, across crash resumptions.
    next_launch_id: Cell<u64>,
    /// Replayable launches not yet confirmed by a `synchronize`,
    /// resubmitted (same ids) after a crash resumption.
    pending_replay: RefCell<Vec<ReplayLaunch>>,
    /// Daemon to resume against when the connection dies mid-call (set by
    /// [`SlateClient::install_reattach`]).
    reattach_to: RefCell<Option<Arc<SlateDaemon>>>,
    retry: Option<RetryPolicy>,
    breaker: Option<CircuitBreaker>,
    /// Errors surfaced by the most recent `synchronize` (first one is
    /// returned; the rest are counted here).
    last_sync_failures: Cell<u64>,
}

impl SlateClient {
    /// Wraps a daemon connection.
    pub fn new(conn: Connection) -> Self {
        Self {
            next_launch_id: Cell::new(conn.launch_floor),
            conn: RefCell::new(conn),
            pending_launches: Cell::new(0),
            pending_replay: RefCell::new(Vec::new()),
            reattach_to: RefCell::new(None),
            retry: None,
            breaker: None,
            last_sync_failures: Cell::new(0),
        }
    }

    /// Enables bounded retry with exponential backoff for transient
    /// errors on `synchronize` (builder style; off by default).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Installs a client-side circuit breaker (builder style; off by
    /// default): consecutive `Overloaded`/`Timeout` outcomes open it and
    /// subsequent requests fail fast with [`SlateError::Overloaded`]
    /// without touching the daemon, until the cooldown's half-open probe.
    pub fn with_circuit_breaker(mut self, config: BreakerConfig) -> Self {
        self.breaker = Some(CircuitBreaker::new(config));
        self
    }

    /// The circuit breaker's current state, if one is installed.
    pub fn breaker_state(&self) -> Option<BreakerState> {
        self.breaker.as_ref().map(|b| b.state())
    }

    /// The daemon-assigned session id.
    pub fn session(&self) -> u64 {
        self.conn.borrow().session
    }

    /// The token that reattaches this session after a daemon crash:
    /// redeem it with [`SlateDaemon::resume`] (or let
    /// [`SlateClient::install_reattach`] do so automatically) once the
    /// daemon has been recovered from its durable log.
    pub fn resume_token(&self) -> ResumeToken {
        let conn = self.conn.borrow();
        ResumeToken {
            epoch: conn.epoch,
            session: conn.session,
        }
    }

    /// Arms transparent crash reattachment: when a call finds the
    /// connection dead, the client redeems its resume token against
    /// `daemon` (the *recovered* instance — hand the client the new
    /// `Arc` after [`SlateDaemon::recover`]), resubmits every
    /// unconfirmed replayable launch under its original id (the daemon
    /// deduplicates ones whose work survived), and retries the call once.
    pub fn install_reattach(&self, daemon: &Arc<SlateDaemon>) {
        *self.reattach_to.borrow_mut() = Some(daemon.clone());
    }

    /// Redeems the resume token against the installed daemon, swaps the
    /// connection, and resubmits unconfirmed replayable launches.
    fn reattach(&self) -> Result<(), SlateError> {
        let daemon = self
            .reattach_to
            .borrow()
            .clone()
            .ok_or(SlateError::Disconnected)?;
        let fresh = daemon.resume(self.resume_token())?;
        self.next_launch_id
            .set(self.next_launch_id.get().max(fresh.launch_floor));
        *self.conn.borrow_mut() = fresh;
        let conn = self.conn.borrow();
        for r in self.pending_replay.borrow().iter() {
            conn.tx
                .send(Request::Launch(r.to_cmd()))
                .map_err(|_| SlateError::Disconnected)?;
        }
        Ok(())
    }

    /// Runs `op` against the live connection; on [`SlateError::Disconnected`]
    /// with reattachment installed, resumes the session and retries once.
    fn with_reattach<T>(
        &self,
        op: impl Fn(&Connection) -> Result<T, SlateError>,
    ) -> Result<T, SlateError> {
        let first = op(&self.conn.borrow());
        match first {
            Err(SlateError::Disconnected) if self.reattach_to.borrow().is_some() => {
                self.reattach()?;
                let conn = self.conn.borrow();
                op(&conn)
            }
            out => out,
        }
    }

    fn call(&self, req: impl Fn() -> Request) -> Result<Response, SlateError> {
        self.with_reattach(|conn| {
            conn.tx.send(req()).map_err(|_| SlateError::Disconnected)?;
            conn.rx.recv().map_err(|_| SlateError::Disconnected)
        })
    }

    /// Runs `op` under the configured retry policy, if any. Only applied
    /// to operations that are safe to re-issue: a transient rejection
    /// means the daemon did not perform them.
    fn retrying<T>(&self, mut op: impl FnMut() -> Result<T, SlateError>) -> Result<T, SlateError> {
        match &self.retry {
            Some(policy) => policy.run(&mut op),
            None => op(),
        }
    }

    /// Runs `op` behind the circuit breaker (if installed) and under the
    /// retry policy (if configured): an open breaker fails fast without
    /// touching the daemon; the final outcome feeds the breaker.
    fn guarded<T>(&self, op: impl FnMut() -> Result<T, SlateError>) -> Result<T, SlateError> {
        if let Some(b) = &self.breaker {
            b.check()?;
        }
        let out = self.retrying(op);
        if let Some(b) = &self.breaker {
            b.record(&out);
        }
        out
    }

    /// Allocates `bytes` bytes of device memory (`cudaMalloc`).
    pub fn malloc(&self, bytes: u64) -> Result<SlatePtr, SlateError> {
        self.guarded(|| self.call(|| Request::Malloc(bytes))?.expect_ptr())
    }

    /// Frees a device allocation (`cudaFree`).
    pub fn free(&self, ptr: SlatePtr) -> Result<(), SlateError> {
        self.guarded(|| self.call(|| Request::Free(ptr))?.expect_ok())
    }

    /// Copies host bytes into device memory through a shared buffer.
    /// `offset` must be word-aligned.
    pub fn memcpy_h2d(&self, ptr: SlatePtr, offset: usize, data: Bytes) -> Result<(), SlateError> {
        self.guarded(|| {
            // Bytes clones are refcount-only; re-sending is cheap.
            self.call(|| Request::MemcpyH2D {
                ptr,
                offset,
                data: data.clone(),
            })?
            .expect_ok()
        })
    }

    /// Convenience: uploads a slice of f32s.
    pub fn upload_f32(&self, ptr: SlatePtr, data: &[f32]) -> Result<(), SlateError> {
        let bytes: Vec<u8> = data.iter().flat_map(|f| f.to_le_bytes()).collect();
        self.memcpy_h2d(ptr, 0, bytes.into())
    }

    /// Copies device memory back to the host. `offset` must be
    /// word-aligned.
    pub fn memcpy_d2h(
        &self,
        ptr: SlatePtr,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, SlateError> {
        self.guarded(|| {
            Ok(self
                .call(|| Request::MemcpyD2H { ptr, offset, len })?
                .expect_data()?
                .to_vec())
        })
    }

    /// Convenience: downloads `n` f32s.
    pub fn download_f32(&self, ptr: SlatePtr, n: usize) -> Result<Vec<f32>, SlateError> {
        let raw = self.memcpy_d2h(ptr, 0, n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Launches a kernel asynchronously. `ptrs` are resolved daemon-side
    /// and handed to `factory` in order; `source` optionally carries the
    /// CUDA text through the injection pipeline.
    pub fn launch_with<F>(
        &self,
        ptrs: Vec<SlatePtr>,
        task_size: u32,
        source: Option<String>,
        factory: F,
    ) -> Result<(), SlateError>
    where
        F: FnOnce(Vec<Arc<GpuBuffer>>) -> Arc<dyn GpuKernel> + Send + 'static,
    {
        self.launch_inner(
            ptrs,
            task_size,
            source,
            false,
            0,
            None,
            Box::new(factory),
            None,
        )
    }

    /// Like [`SlateClient::launch_with`] but with a *re-invocable*
    /// factory, which makes the launch crash-replayable: it is held
    /// client-side until a [`SlateClient::synchronize`] confirms it, and
    /// if the daemon dies before that, a reattached client (see
    /// [`SlateClient::install_reattach`]) resubmits it under its original
    /// launch id — the daemon deduplicates ids whose work survived the
    /// crash, so the kernel runs exactly once either way. `FnOnce`-based
    /// launches ([`SlateClient::launch_with`] and friends) cannot be
    /// resubmitted and are lost if the daemon crashes before running them.
    pub fn launch_replayable<F>(
        &self,
        ptrs: Vec<SlatePtr>,
        task_size: u32,
        source: Option<String>,
        factory: F,
    ) -> Result<(), SlateError>
    where
        F: Fn(Vec<Arc<GpuBuffer>>) -> Arc<dyn GpuKernel> + Send + Sync + 'static,
    {
        let replay: ReplayFactory = Arc::new(factory);
        let f = replay.clone();
        self.launch_inner(
            ptrs,
            task_size,
            source,
            false,
            0,
            None,
            Box::new(move |bufs| f(bufs)),
            Some(replay),
        )
    }

    /// Like [`SlateClient::launch_with`] but arms the daemon's watchdog
    /// with a per-kernel deadline: if the kernel runs longer than
    /// `deadline_ms` milliseconds it is evicted from the device and the
    /// next [`SlateClient::synchronize`] surfaces
    /// [`SlateError::Timeout`]. Co-runners are unaffected.
    pub fn launch_with_deadline<F>(
        &self,
        ptrs: Vec<SlatePtr>,
        task_size: u32,
        deadline_ms: u64,
        factory: F,
    ) -> Result<(), SlateError>
    where
        F: FnOnce(Vec<Arc<GpuBuffer>>) -> Arc<dyn GpuKernel> + Send + 'static,
    {
        self.launch_inner(
            ptrs,
            task_size,
            None,
            false,
            0,
            Some(deadline_ms),
            Box::new(factory),
            None,
        )
    }

    /// Launches a kernel on a CUDA stream. Launches on the same stream are
    /// ordered; launches on different non-zero streams may run
    /// concurrently. [`SlateClient::synchronize`] fences all streams.
    pub fn launch_on_stream<F>(
        &self,
        stream: u32,
        ptrs: Vec<SlatePtr>,
        task_size: u32,
        factory: F,
    ) -> Result<(), SlateError>
    where
        F: FnOnce(Vec<Arc<GpuBuffer>>) -> Arc<dyn GpuKernel> + Send + 'static,
    {
        self.launch_inner(
            ptrs,
            task_size,
            None,
            false,
            stream,
            None,
            Box::new(factory),
            None,
        )
    }

    /// Like [`SlateClient::launch_with`] but pins the kernel to solo
    /// execution — for heavily optimized library kernels that should never
    /// be co-scheduled (`#pragma slate solo`).
    pub fn launch_solo_with<F>(
        &self,
        ptrs: Vec<SlatePtr>,
        task_size: u32,
        source: Option<String>,
        factory: F,
    ) -> Result<(), SlateError>
    where
        F: FnOnce(Vec<Arc<GpuBuffer>>) -> Arc<dyn GpuKernel> + Send + 'static,
    {
        self.launch_inner(
            ptrs,
            task_size,
            source,
            true,
            0,
            None,
            Box::new(factory),
            None,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn launch_inner(
        &self,
        ptrs: Vec<SlatePtr>,
        task_size: u32,
        source: Option<String>,
        pinned_solo: bool,
        stream: u32,
        deadline_ms: Option<u64>,
        factory: KernelFactory,
        replay: Option<ReplayFactory>,
    ) -> Result<(), SlateError> {
        // Launches are asynchronous (no reply to feed back), but an open
        // breaker still fails them fast instead of piling work onto a
        // daemon that is already shedding.
        if let Some(b) = &self.breaker {
            b.check()?;
        }
        let launch_id = self.next_launch_id.get();
        self.next_launch_id.set(launch_id + 1);
        let replayable = replay.is_some();
        if let Some(f) = replay {
            self.pending_replay.borrow_mut().push(ReplayLaunch {
                launch_id,
                ptrs: ptrs.clone(),
                factory: f,
                task_size,
                source: source.clone(),
                pinned_solo,
                stream,
                deadline_ms,
            });
        }
        let cmd = LaunchCmd {
            launch_id,
            ptrs,
            factory,
            task_size,
            source,
            pinned_solo,
            stream,
            deadline_ms,
        };
        let sent = self
            .conn
            .borrow()
            .tx
            .send(Request::Launch(cmd))
            .map_err(|_| SlateError::Disconnected);
        if sent.is_err() {
            if replayable && self.reattach_to.borrow().is_some() {
                // reattach() resubmits every pending replayable launch,
                // including the one recorded above.
                self.reattach()?;
            } else {
                // A consumed FnOnce factory cannot be resent; surface the
                // severed connection instead of silently dropping work.
                sent?;
            }
        }
        self.pending_launches.set(self.pending_launches.get() + 1);
        Ok(())
    }

    /// Blocks until every previously launched kernel has completed
    /// (`cudaDeviceSynchronize`). Surfaces the *first* launch error;
    /// additional failures from the same batch are counted in
    /// [`SlateClient::last_sync_failures`]. The outcome feeds the circuit
    /// breaker (if installed): this is where `Overloaded` sheds and
    /// watchdog `Timeout`s from asynchronous launches surface.
    pub fn synchronize(&self) -> Result<(), SlateError> {
        let out = self.synchronize_inner();
        if let Some(b) = &self.breaker {
            b.record(&out);
        }
        out
    }

    fn synchronize_inner(&self) -> Result<(), SlateError> {
        // The session thread serves requests in order, so one round trip
        // fences all prior launches. Failed launches reply with their error
        // ahead of the sync's Ok. A mid-sync daemon crash severs the pipe;
        // with reattachment installed the session is resumed, unconfirmed
        // replayable launches resubmitted, and the fence reissued.
        let (first, failures) = self.with_reattach(|conn| {
            conn.tx
                .send(Request::Sync)
                .map_err(|_| SlateError::Disconnected)?;
            let mut first: Option<SlateError> = None;
            let mut failures: u64 = 0;
            loop {
                match conn.rx.recv().map_err(|_| SlateError::Disconnected)? {
                    Response::Ok => break,
                    Response::Err(e) => {
                        failures += 1;
                        if first.is_none() {
                            first = Some(SlateError::from_wire(&e));
                        }
                    }
                    other => {
                        return Err(SlateError::Other(format!(
                            "unexpected sync response {other:?}"
                        )))
                    }
                }
            }
            Ok((first, failures))
        })?;
        self.pending_launches.set(0);
        self.last_sync_failures.set(failures);
        // The fence acknowledged every prior launch (success or error):
        // nothing is left to replay after a future crash.
        self.pending_replay.borrow_mut().clear();
        match first {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Launch errors surfaced by the most recent
    /// [`SlateClient::synchronize`] (0 if it succeeded). When several
    /// launches of one batch fail, `synchronize` returns the first error
    /// and this reports how many there were in total.
    pub fn last_sync_failures(&self) -> u64 {
        self.last_sync_failures.get()
    }

    /// Ends the session; the daemon frees any leaked allocations.
    ///
    /// Pending launches are fenced first (a `Sync` round trip), so an
    /// in-flight launch error is surfaced here instead of being silently
    /// dropped with the session.
    pub fn disconnect(self) -> Result<(), SlateError> {
        let pending = if self.pending_launches.get() > 0 {
            self.synchronize().err()
        } else {
            None
        };
        let bye = self.call(|| Request::Disconnect)?.expect_ok();
        match pending {
            Some(e) => Err(e),
            None => bye,
        }
    }
}

/// Connects to `daemon` under `policy`: transient rejections (e.g.
/// [`SlateError::ShuttingDown`] during a drain that may be superseded by a
/// restart) are retried with exponential backoff.
pub fn connect_with_retry(
    daemon: &Arc<crate::daemon::SlateDaemon>,
    user: &str,
    policy: RetryPolicy,
) -> Result<SlateClient, SlateError> {
    policy.run(|| daemon.connect(user).map(SlateClient::new))
}

/// [`connect_with_retry`] with a declared SLO class: the session's
/// launches arbitrate under it (latency-critical arrivals displace
/// best-effort residents when the daemon runs with
/// [`DaemonOptions::preempt_bound_ms`](crate::daemon::DaemonOptions::preempt_bound_ms)
/// set).
pub fn connect_with_slo_retry(
    daemon: &Arc<crate::daemon::SlateDaemon>,
    user: &str,
    slo: SloClass,
    policy: RetryPolicy,
) -> Result<SlateClient, SlateError> {
    policy.run(|| daemon.connect_with_slo(user, slo).map(SlateClient::new))
}

/// Redeems a [`ResumeToken`] against a recovered `daemon` under `policy`,
/// retrying transient rejections (e.g. the daemon still draining its
/// adoption backlog behind [`SlateError::ShuttingDown`] during a rolling
/// restart). [`SlateError::ResumeRejected`] is permanent and fails fast:
/// a refused token never becomes valid.
pub fn resume_with_retry(
    daemon: &Arc<SlateDaemon>,
    token: ResumeToken,
    policy: RetryPolicy,
) -> Result<SlateClient, SlateError> {
    policy.run(|| daemon.resume(token).map(SlateClient::new))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::SlateDaemon;
    use slate_gpu_sim::device::DeviceConfig;

    #[test]
    fn upload_download_roundtrip() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1 << 20);
        let c = SlateClient::new(daemon.connect("u").unwrap());
        let p = c.malloc(64).unwrap();
        c.upload_f32(p, &[1.5, -2.0, 3.25]).unwrap();
        let back = c.download_f32(p, 3).unwrap();
        assert_eq!(back, vec![1.5, -2.0, 3.25]);
        c.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn out_of_memory_is_reported() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1024);
        let c = SlateClient::new(daemon.connect("u").unwrap());
        assert!(c.malloc(512).is_ok());
        let err = c.malloc(4096).unwrap_err();
        assert_eq!(err, SlateError::OutOfMemory { requested: 4096 });
        assert!(err.to_string().contains("out of device memory"), "{err}");
        c.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn retry_policy_backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(10),
            jitter_seed: None,
        };
        assert_eq!(p.delay_for(0), Duration::from_millis(2));
        assert_eq!(p.delay_for(1), Duration::from_millis(4));
        assert_eq!(p.delay_for(2), Duration::from_millis(8));
        assert_eq!(p.delay_for(3), Duration::from_millis(10), "capped");
        assert_eq!(p.delay_for(30), Duration::from_millis(10), "no overflow");
    }

    #[test]
    fn retry_policy_retries_transient_until_success() {
        let p = RetryPolicy::with_attempts(5);
        let mut calls = 0;
        let out: Result<u32, _> = p.run(|| {
            calls += 1;
            if calls < 3 {
                Err(SlateError::ShuttingDown)
            } else {
                Ok(7)
            }
        });
        assert_eq!(out, Ok(7));
        assert_eq!(calls, 3);
    }

    #[test]
    fn retry_policy_gives_up_after_max_attempts() {
        let p = RetryPolicy::with_attempts(3);
        let mut calls = 0;
        let out: Result<(), _> = p.run(|| {
            calls += 1;
            Err(SlateError::Timeout { elapsed_ms: 1 })
        });
        assert_eq!(out, Err(SlateError::Timeout { elapsed_ms: 1 }));
        assert_eq!(calls, 3);
    }

    #[test]
    fn retry_policy_never_retries_permanent_errors() {
        let p = RetryPolicy::with_attempts(5);
        let mut calls = 0;
        let out: Result<(), _> = p.run(|| {
            calls += 1;
            Err(SlateError::InvalidPointer { ptr: 9 })
        });
        assert!(out.is_err());
        assert_eq!(calls, 1, "permanent errors fail fast");
    }

    #[test]
    fn decorrelated_jitter_stays_within_bounds_and_varies() {
        let base = Duration::from_millis(2);
        let cap = Duration::from_millis(50);
        let mut state = 42u64;
        let mut prev = base;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let d = decorrelated_jitter(base, prev, cap, &mut state);
            assert!(d >= base, "below base: {d:?}");
            assert!(d <= cap, "above cap: {d:?}");
            seen.insert(d.as_nanos());
            prev = d;
        }
        assert!(
            seen.len() > 10,
            "jitter must actually vary, saw {}",
            seen.len()
        );
        // Deterministic for a fixed seed.
        let run = |seed: u64| {
            let mut st = seed;
            let mut p = base;
            (0..20)
                .map(|_| {
                    p = decorrelated_jitter(base, p, cap, &mut st);
                    p
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds decorrelate");
    }

    #[test]
    fn decorrelated_jitter_degenerate_bounds() {
        // base == cap pins the draw.
        let mut st = 1u64;
        let d = decorrelated_jitter(
            Duration::from_millis(5),
            Duration::from_millis(5),
            Duration::from_millis(5),
            &mut st,
        );
        assert_eq!(d, Duration::from_millis(5));
        // cap below base clamps to cap rather than panicking.
        let d = decorrelated_jitter(
            Duration::from_millis(10),
            Duration::from_millis(10),
            Duration::from_millis(3),
            &mut st,
        );
        assert_eq!(d, Duration::from_millis(3));
    }

    #[test]
    fn retry_honors_overloaded_retry_after_floor() {
        let p = RetryPolicy {
            max_attempts: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            jitter_seed: Some(3),
        };
        let t0 = Instant::now();
        let mut calls = 0;
        let out: Result<(), _> = p.run(|| {
            calls += 1;
            Err(SlateError::Overloaded { retry_after_ms: 40 })
        });
        assert!(out.is_err());
        assert_eq!(calls, 2);
        assert!(
            t0.elapsed() >= Duration::from_millis(40),
            "the daemon's hint floors the backoff: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn breaker_opens_after_threshold_and_fails_fast() {
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(50),
        });
        assert_eq!(b.state(), BreakerState::Closed);
        b.record::<()>(&Err(SlateError::Overloaded { retry_after_ms: 5 }));
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        b.record::<()>(&Err(SlateError::Timeout { elapsed_ms: 9 }));
        assert_eq!(b.state(), BreakerState::Open);
        match b.check().unwrap_err() {
            SlateError::Overloaded { retry_after_ms } => {
                assert!((1..=50).contains(&retry_after_ms));
            }
            other => panic!("expected Overloaded, got {other}"),
        }
    }

    #[test]
    fn breaker_half_open_probe_closes_on_success_reopens_on_failure() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_millis(20),
        };
        let b = CircuitBreaker::new(cfg);
        b.record::<()>(&Err(SlateError::Overloaded { retry_after_ms: 1 }));
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.check().is_ok(), "the probe is allowed through");
        // Probe fails: reopen for a full cooldown.
        b.record::<()>(&Err(SlateError::Overloaded { retry_after_ms: 1 }));
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Probe succeeds: fully closed, streak reset.
        b.record::<()>(&Ok(()));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_counts_device_loss_like_overload() {
        // A lost device shrinks fleet capacity the same way saturation
        // does, so DeviceLost advances the breaker's failure streak
        // exactly like Overloaded/Timeout.
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(50),
        });
        b.record::<()>(&Err(SlateError::DeviceLost { device: 1 }));
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        b.record::<()>(&Err(SlateError::DeviceLost { device: 1 }));
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn breaker_ignores_non_overload_errors() {
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(50),
        });
        b.record::<()>(&Err(SlateError::Overloaded { retry_after_ms: 1 }));
        // A structured non-overload error resets the streak.
        b.record::<()>(&Err(SlateError::InvalidPointer { ptr: 1 }));
        b.record::<()>(&Err(SlateError::Overloaded { retry_after_ms: 1 }));
        assert_eq!(b.state(), BreakerState::Closed, "streak was reset");
    }

    #[test]
    fn client_breaker_stops_hammering_a_saturated_daemon() {
        use crate::daemon::DaemonOptions;
        // Watermark 0: every malloc is shed with Overloaded.
        let opts = DaemonOptions {
            admission: crate::admission::AdmissionLimits {
                mem_watermark: Some(0.0),
                ..Default::default()
            },
            ..Default::default()
        };
        let daemon = SlateDaemon::start_with_options(DeviceConfig::tiny(2), 1 << 20, opts);
        let c = SlateClient::new(daemon.connect("breaker").unwrap()).with_circuit_breaker(
            BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_secs(60),
            },
        );
        assert!(c.malloc(64).is_err());
        assert!(c.malloc(64).is_err());
        assert_eq!(c.breaker_state(), Some(BreakerState::Open));
        let shed_before = daemon.admission_stats().mallocs_shed;
        // Open breaker: the next calls fail fast client-side.
        assert!(matches!(
            c.malloc(64).unwrap_err(),
            SlateError::Overloaded { .. }
        ));
        assert!(c.launch_with(vec![], 10, None, |_| unreachable!()).is_err());
        assert_eq!(
            daemon.admission_stats().mallocs_shed,
            shed_before,
            "the daemon never saw the failed-fast requests"
        );
        drop(c);
        daemon.join();
    }

    #[test]
    fn connect_with_retry_fails_fast_once_shut_down() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1 << 20);
        assert!(daemon.shutdown(Duration::from_millis(100)));
        // ShuttingDown is transient (a restarted daemon could accept), but
        // this daemon never comes back: the policy must exhaust attempts.
        let err = connect_with_retry(&daemon, "late", RetryPolicy::with_attempts(2))
            .err()
            .unwrap();
        assert_eq!(err, SlateError::ShuttingDown);
    }
}
