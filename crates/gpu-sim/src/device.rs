//! GPU device description.
//!
//! [`DeviceConfig`] captures the architectural parameters the fluid-rate
//! simulator needs: SM count and clock, compute issue width, the DRAM
//! bandwidth envelope (aggregate and per-SM), the L2 capacity used by the
//! cache-interference model, PCIe bandwidth for host transfers, occupancy
//! limits, and the cost constants for block setup, context switches and
//! global atomics.
//!
//! The [`DeviceConfig::titan_xp`] preset is calibrated to the NVIDIA Titan Xp
//! (GP102, Pascal) card used in the Slate paper: 30 SMs, ~11.4 SP TFLOP/s,
//! ~480 GB/s effective DRAM bandwidth that saturates at roughly nine SMs
//! (paper Fig. 1), and a 3 MiB L2.

use serde::{Deserialize, Serialize};

/// An inclusive range of streaming multiprocessor (SM) ids, `lo..=hi`.
///
/// Slate binds persistent workers to such a range (`sm_low`/`sm_high` in the
/// paper's Listing 1); the hardware scheduler uses the full device range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SmRange {
    /// Lowest SM id in the range (inclusive).
    pub lo: u32,
    /// Highest SM id in the range (inclusive).
    pub hi: u32,
}

impl SmRange {
    /// Creates a range covering `lo..=hi`. Panics if `lo > hi`.
    pub fn new(lo: u32, hi: u32) -> Self {
        assert!(lo <= hi, "SmRange requires lo <= hi, got {lo}..={hi}");
        Self { lo, hi }
    }

    /// The full device: `0..=num_sms-1`.
    pub fn all(num_sms: u32) -> Self {
        assert!(num_sms > 0, "device must have at least one SM");
        Self::new(0, num_sms - 1)
    }

    /// Number of SMs in the range.
    pub fn len(&self) -> u32 {
        self.hi - self.lo + 1
    }

    /// Always false; a range holds at least one SM by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `sm` falls inside the range (the Listing 1 gate).
    pub fn contains(&self, sm: u32) -> bool {
        sm >= self.lo && sm <= self.hi
    }

    /// Whether two ranges share any SM.
    pub fn overlaps(&self, other: &SmRange) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

/// Architectural parameters of a simulated GPU.
///
/// All rates are in base SI units (Hz, bytes/s, seconds); work quantities are
/// cycles, bytes, flops. See module docs for the calibration rationale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Human-readable device name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// SM clock in Hz.
    pub clock_hz: f64,
    /// Peak single-precision flops retired per cycle per SM (FMA = 2 flops).
    pub flops_per_cycle_per_sm: f64,
    /// Effective aggregate DRAM bandwidth in bytes/s.
    pub dram_bw: f64,
    /// Maximum DRAM bandwidth a single SM can draw, in bytes/s.
    ///
    /// This produces the paper's Fig. 1 shape: stream bandwidth grows
    /// linearly with SM count and saturates at `dram_bw / per_sm_mem_bw`
    /// (~9) SMs.
    pub per_sm_mem_bw: f64,
    /// Fraction of DRAM bandwidth lost to row-buffer and scheduling
    /// interference when two or more kernels contend for a saturated
    /// memory system (interleaved streams destroy row locality). Applied
    /// only while the pipe is oversubscribed by multiple demanders.
    pub dram_mix_penalty: f64,
    /// L2 cache capacity in bytes (shared by all SMs).
    pub l2_bytes: u64,
    /// Host-device interconnect bandwidth in bytes/s (PCIe 3.0 x16).
    pub pcie_bw: f64,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub smem_per_sm: u32,
    /// Resident threads per SM needed to reach full issue throughput
    /// (latency hiding). Below this the SM's effective rate scales down
    /// linearly.
    pub threads_for_peak_per_sm: u32,
    /// Hardware block dispatch/setup cost in cycles, paid once per thread
    /// block under hardware scheduling. Slate's persistent workers pay it
    /// only once per worker (re)launch.
    pub block_setup_cycles: f64,
    /// Serialized cost of one global-memory atomic RMW on a contended
    /// address, in seconds. Bounds the global task-queue pull rate.
    pub atomic_serial_s: f64,
    /// Context-switch cost between processes under vanilla CUDA
    /// time-slicing, in seconds.
    pub ctx_switch_s: f64,
    /// Kernel launch latency (driver + hardware) in seconds.
    pub launch_latency_s: f64,
}

impl DeviceConfig {
    /// NVIDIA Titan Xp (GP102, Pascal), the card used in the paper.
    ///
    /// 30 SMs @ 1.48 GHz, 128 FMA lanes per SM (≈11.4 SP TFLOP/s), 12 GB
    /// GDDR5X with ≈480 GB/s effective bandwidth saturating at ~9 SMs,
    /// 3 MiB L2, PCIe 3.0 x16.
    pub fn titan_xp() -> Self {
        Self {
            name: "NVIDIA Titan Xp (GP102)".to_string(),
            num_sms: 30,
            clock_hz: 1.48e9,
            flops_per_cycle_per_sm: 256.0, // 128 FMA lanes x 2 flops
            dram_bw: 480.0e9,
            per_sm_mem_bw: 54.0e9, // saturation at ~8.9 SMs (paper Fig. 1: 9)
            dram_mix_penalty: 0.18,
            l2_bytes: 3 * 1024 * 1024,
            pcie_bw: 12.0e9,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            regs_per_sm: 65536,
            smem_per_sm: 96 * 1024,
            threads_for_peak_per_sm: 1024,
            block_setup_cycles: 60.0,
            atomic_serial_s: 40e-9,
            ctx_switch_s: 25e-6,
            launch_latency_s: 6e-6,
        }
    }

    /// NVIDIA Tesla V100 (GV100, Volta) — the architecture whose white
    /// paper the Slate paper cites for the 7x sharing speedup claim.
    ///
    /// 80 SMs @ 1.38 GHz, 64 FMA lanes per SM (≈14.1 SP TFLOP/s), 16 GB
    /// HBM2 with ≈810 GB/s effective bandwidth, 6 MiB L2. Used by the
    /// portability experiment to check that Slate's advantages are not an
    /// artefact of the Titan Xp calibration.
    pub fn tesla_v100() -> Self {
        Self {
            name: "NVIDIA Tesla V100 (GV100)".to_string(),
            num_sms: 80,
            clock_hz: 1.38e9,
            flops_per_cycle_per_sm: 128.0, // 64 FMA lanes x 2 flops
            dram_bw: 810.0e9,
            per_sm_mem_bw: 54.0e9,  // knee at ~15 SMs
            dram_mix_penalty: 0.15, // HBM2 tolerates interleaving better
            l2_bytes: 6 * 1024 * 1024,
            pcie_bw: 12.0e9,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            regs_per_sm: 65536,
            smem_per_sm: 96 * 1024,
            threads_for_peak_per_sm: 1024,
            block_setup_cycles: 60.0,
            atomic_serial_s: 30e-9,
            ctx_switch_s: 25e-6,
            launch_latency_s: 5e-6,
        }
    }

    /// A small 4-SM device, convenient for fast unit tests.
    pub fn tiny(num_sms: u32) -> Self {
        Self {
            name: format!("tiny-{num_sms}"),
            num_sms,
            clock_hz: 1.0e9,
            flops_per_cycle_per_sm: 64.0,
            dram_bw: 100.0e9,
            per_sm_mem_bw: 50.0e9,
            dram_mix_penalty: 0.18,
            l2_bytes: 1024 * 1024,
            pcie_bw: 10.0e9,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 16,
            regs_per_sm: 32768,
            smem_per_sm: 48 * 1024,
            threads_for_peak_per_sm: 512,
            block_setup_cycles: 500.0,
            atomic_serial_s: 100e-9,
            ctx_switch_s: 20e-6,
            launch_latency_s: 5e-6,
        }
    }

    /// Peak single-precision compute rate of the whole device, flops/s.
    pub fn peak_flops(&self) -> f64 {
        self.num_sms as f64 * self.clock_hz * self.flops_per_cycle_per_sm
    }

    /// Number of SMs needed to saturate DRAM bandwidth (Fig. 1 knee).
    pub fn bw_saturation_sms(&self) -> f64 {
        self.dram_bw / self.per_sm_mem_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sm_range_basics() {
        let r = SmRange::new(3, 7);
        assert_eq!(r.len(), 5);
        assert!(r.contains(3) && r.contains(7) && !r.contains(8) && !r.contains(2));
        assert!(!r.is_empty());
    }

    #[test]
    fn sm_range_all_covers_device() {
        let r = SmRange::all(30);
        assert_eq!(r.len(), 30);
        assert!(r.contains(0) && r.contains(29));
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn sm_range_rejects_inverted() {
        SmRange::new(5, 4);
    }

    #[test]
    fn sm_range_overlap() {
        let a = SmRange::new(0, 9);
        let b = SmRange::new(10, 29);
        let c = SmRange::new(5, 15);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c) && c.overlaps(&a));
        assert!(b.overlaps(&c) && c.overlaps(&b));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn titan_xp_calibration() {
        let d = DeviceConfig::titan_xp();
        // ~11.4 SP TFLOP/s
        let tflops = d.peak_flops() / 1e12;
        assert!((10.0..13.0).contains(&tflops), "peak = {tflops} TFLOP/s");
        // Fig. 1: memory bandwidth saturates at ~9 SMs.
        let knee = d.bw_saturation_sms();
        assert!((8.0..10.0).contains(&knee), "knee = {knee} SMs");
    }

    #[test]
    fn v100_calibration() {
        let d = DeviceConfig::tesla_v100();
        let tflops = d.peak_flops() / 1e12;
        assert!((13.0..16.0).contains(&tflops), "peak = {tflops} TFLOP/s");
        let knee = d.bw_saturation_sms();
        assert!((13.0..17.0).contains(&knee), "knee = {knee} SMs");
        assert!(d.num_sms > DeviceConfig::titan_xp().num_sms);
    }

    #[test]
    fn config_serde_roundtrip() {
        let d = DeviceConfig::titan_xp();
        let s = serde_json::to_string(&d).unwrap();
        let d2: DeviceConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(d, d2);
    }
}
