//! The Slate daemon (paper §IV-A2, §IV-B).
//!
//! The daemon is the server half of Slate's client–server architecture: it
//! funnels every client's operations into one device context, which is what
//! makes cross-process co-running possible at all. Per client it keeps a
//! *session*, served by its own thread, holding the hash table that maps
//! the client's opaque pointers to device allocations.
//!
//! Kernel launches run the full Slate pipeline, functionally: the source
//! injector (with its per-user compilation cache), first-run profiling and
//! classification, the workload-aware arbiter (Table I policy +
//! SM-demand partitioning), and the dispatch kernel with persistent
//! workers — including *live resizing* of a running kernel when a
//! complementary client arrives or departs.
//!
//! # The arbitration core
//!
//! Every scheduling decision — co-run selection, SM partitioning, dynamic
//! resizing, admission shedding, starvation promotion, watchdog eviction,
//! session reaping — is made by the shared, deterministic
//! [`ArbiterCore`](crate::arbiter::ArbiterCore). The daemon is a thin
//! driver: wire requests and a 1 ms heartbeat become
//! [`Event`](crate::arbiter::Event)s stamped with a monotonic logical
//! clock, and the returned [`Command`]s are
//! carried out against dispatch handles, the memory pool, and client
//! replies. With [`DaemonOptions::record_arbiter`] set, every fed batch is
//! recorded; the resulting [`EventLog`] replays to the byte-identical
//! command sequence (see [`crate::arbiter::replay`]) — the simulated
//! [`SlateRuntime`](crate::runtime::SlateRuntime) drives the very same
//! core, so both frontends make identical decisions for identical event
//! streams.
//!
//! # Multi-device placement
//!
//! With [`DaemonOptions::devices`] set, the daemon schedules over a fleet:
//! one arbitration core per device behind the deterministic
//! [`PlacementLayer`]. New sessions are
//! routed by [`DaemonOptions::placement`] and stick to their device; with
//! [`DaemonOptions::rebalance`] set, a sustained load imbalance migrates a
//! resident kernel — an ordinary eviction on the source device followed by
//! a resumed dispatch on the target at the carried `slateIdx` progress, so
//! no user block executes twice. [`SlateDaemon::placement_stats`] (and
//! [`DaemonMetrics::placement`]) count routed sessions, rebalances and
//! completed migrations; a recorded multi-device run yields a
//! [`PlacementLog`] that splits into ordinary per-device [`EventLog`]s.
//!
//! # Fault tolerance
//!
//! Because every client shares one device context, the daemon contains
//! failures instead of letting them spread to co-runners:
//!
//! * **session reaping** — a client that vanishes without `Disconnect`
//!   (its channel sender drops) is detected by its session thread, which
//!   frees the session's allocations, releases any arbiter residency and
//!   Hyper-Q lanes, and lets the surviving co-runner regrow to the full
//!   device — exactly the `Disconnect` path;
//! * a **kernel watchdog** — launches carry an optional deadline (or
//!   inherit [`DaemonOptions::default_deadline_ms`]); the heartbeat
//!   evicts over-deadline kernels through the paper's own retreat flag and
//!   the client receives [`SlateError::Timeout`] while co-runners keep
//!   running;
//! * **graceful shutdown** — [`SlateDaemon::shutdown`] refuses new
//!   connections with [`SlateError::ShuttingDown`] and drains in-flight
//!   sessions under a deadline; during the drain the arbiter stops
//!   co-scheduling and serializes remaining kernels solo, with a bounded
//!   condvar wait so nothing can wedge waiting for a grant;
//! * deterministic **fault injection** — a [`FaultPlan`]
//!   (`slate_gpu_sim::fault`) passed through [`DaemonOptions`] makes
//!   kernels hang, launches fault, memcpys stall, or channels drop at
//!   scripted points, so all of the above is testable and replayable;
//! * **poison tolerance** — all daemon-shared state lives behind
//!   [`crate::sync::Mutex`], which recovers a lock some thread panicked
//!   under instead of cascading the panic;
//!   [`DaemonMetrics::lock_recoveries`] counts the recoveries.
//!
//! # Overload protection
//!
//! * **admission control** — [`DaemonOptions::admission`] bounds
//!   concurrent sessions, pending launches (per session and daemon-wide)
//!   and memory pressure; over-limit requests are shed with
//!   [`SlateError::Overloaded`] carrying a `retry_after_ms` hint computed
//!   from the queued work, and deadline-carrying launches are rejected up
//!   front when the estimated queue wait already exceeds their deadline;
//! * **backpressure** — per-session and global launch gauges implement
//!   a drop-newest shed policy; [`SlateDaemon::queue_stats`] and
//!   [`SlateDaemon::metrics`] expose the backlog;
//! * **starvation-free arbitration** — with
//!   [`DaemonOptions::starvation_bound_ms`] set, a kernel waiting past the
//!   bound refuses co-running and is dispatched pinned-solo as soon as the
//!   device frees ([`SlateDaemon::starvation_promotions`] counts these);
//!   waiters are served longest-wait-first with arrival order as the
//!   deterministic tie-break.

use crate::admission::{AdmissionLimits, AdmissionStats, DaemonMetrics, FleetAdmissionConfig};
use crate::arbiter::{ArbiterConfig, Command, Event as ArbEvent, EventLog};
use crate::backend::LeaseTable;
use crate::channel::{LaunchCmd, Request, Response, SlatePtr};
use crate::dispatch::{DispatchHandle, Dispatcher};
use crate::durability::{recover_dir, Durability, DurabilityOptions, DurableMeta, WalRecord};
use crate::error::SlateError;
use crate::feed::{ring as feed_ring, EventBatch, RingConsumer, RingProducer};
use crate::injector::InjectionCache;
use crate::placement::replay::{PlacementBatch, PlacementLog};
use crate::placement::{
    HealthConfig, HealthState, PlacementConfig, PlacementLayer, PlacementPolicy, PlacementStats,
    RebalanceConfig, RoutedCommand,
};
use crate::profile::ProfileTable;
use crate::queue::QueueStats;
use crate::sync::{Condvar, Mutex};
use crate::transform::TransformedKernel;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use serde::{Deserialize, Serialize};
use slate_gpu_sim::buffer::{DeviceMemoryPool, DevicePtr, GpuBuffer};
use slate_gpu_sim::device::{DeviceConfig, SmRange};
use slate_gpu_sim::fault::{FaultKind, FaultPlan, FaultSite, FaultToken};
use slate_gpu_sim::workqueue::HyperQ;
use slate_kernels::workload::SloClass;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Mutable state of the daemon's arbiter frontend, under one lock.
struct ArbInner {
    /// The device fleet's arbitration brain: one per-device
    /// [`ArbiterCore`](crate::arbiter::ArbiterCore) behind the
    /// deterministic routing of [`PlacementLayer`]. A single-device daemon
    /// is the degenerate N=1 layer and behaves exactly as before.
    layer: PlacementLayer,
    /// Dispatch grants awaiting pickup by their `execute_kernel` thread:
    /// lease → (device index, granted SM range). Ordered map so any
    /// iteration over pending grants is deterministic. (Dense-slot rule,
    /// `DESIGN.md` §17: an ordered map off the per-event hot path stays a
    /// map; only decision-path tables moved to interned `IdTable` slots,
    /// and any slot iteration that reaches output must sort by external
    /// id first.)
    grants: BTreeMap<u64, (usize, SmRange)>,
    /// Dispatch handles of waiting/resident leases — the shared
    /// backend-layer interpretation of `Resize`/`Evict` against dispatch
    /// handles (including the injected-hang token cancel on eviction), the
    /// same table [`crate::backend::DispatcherBackend`] executes with.
    /// Leases are fleet-unique, so one table serves every device.
    leases: LeaseTable,
}

/// How many submissions the arbiter feed ring holds before producers
/// back-pressure (waiters spin-yield; heartbeat ticks are dropped).
/// Power of two; see `DESIGN.md` §17 for the sizing rationale.
const FEED_RING_CAPACITY: usize = 128;

/// One pooled submission to the arbiter consumer thread: a reusable
/// [`EventBatch`] plus the reply fields the consumer fills in. Cells
/// travel producer → ring → consumer → pool inside `Arc`s, so a
/// steady-state submission moves pointers and reuses buffers — it never
/// touches the allocator.
struct FeedCell {
    state: Mutex<CellState>,
    /// Signalled by the consumer when the cell's phase turns `Done`.
    done: Condvar,
}

impl FeedCell {
    fn new() -> Self {
        Self {
            state: Mutex::new(CellState {
                batch: EventBatch::new(),
                meta: None,
                session: None,
                detached: false,
                fed: false,
                retry_after_ms: None,
                phase: CellPhase::Done,
            }),
            done: Condvar::new(),
        }
    }
}

struct CellState {
    /// Events in, routed commands out.
    batch: EventBatch<RoutedCommand>,
    /// Durable record to append right after the batch, under the same
    /// arbiter lock — unless the batch was shed or unfed. Carried by
    /// `connect` (the session-meta record must not be separable from its
    /// admission feed by a crash).
    meta: Option<WalRecord>,
    /// Session whose shed rejection the submitter wants surfaced as a
    /// retry hint.
    session: Option<u64>,
    /// Fire-and-forget (heartbeat): nobody waits; the consumer recycles
    /// the cell itself.
    detached: bool,
    /// Whether the batch reached the core — `false` after a crash; the
    /// caller must treat the events as never having happened.
    fed: bool,
    /// Retry hint when this batch's request was shed.
    retry_after_ms: Option<u64>,
    phase: CellPhase,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum CellPhase {
    /// In the ring, awaiting the consumer.
    Queued,
    /// Consumed; reply fields are valid.
    Done,
}

/// State shared between the submitting threads and the arbiter consumer
/// thread.
struct ArbShared {
    /// Epoch of the logical clock ([`crate::arbiter::Tick`]s are
    /// microseconds since this instant, offset by `base_us`).
    epoch: Instant,
    /// Logical-clock offset: a recovered daemon resumes the crashed
    /// incarnation's clock instead of restarting at zero, so the WAL's
    /// tick stream stays monotonic across epochs.
    base_us: u64,
    inner: Mutex<ArbInner>,
    /// Signalled after every feed; `wait_grant` blocks on it.
    granted: Condvar,
    /// Raised by [`SlateDaemon::crash`] *under the arbiter lock*: every
    /// later feed becomes a no-op (`fed == false`), which is what keeps
    /// the WAL and the in-memory core in lockstep at the kill point.
    crashed: AtomicBool,
    /// Raised by [`ArbFrontend::drop`]; the consumer drains the ring and
    /// exits.
    stop: AtomicBool,
    /// Write-ahead log sink; every non-heartbeat fed batch is appended
    /// while the arbiter lock is held, so the log's batch order is the
    /// feed order.
    durability: Option<Arc<Durability>>,
}

impl ArbShared {
    fn now_us(&self) -> u64 {
        self.base_us + self.epoch.elapsed().as_micros() as u64
    }

    /// Consumes one cell: feeds its batch to the placement layer, appends
    /// to the WAL, carries out the routed commands, and completes or
    /// recycles the cell. This is the only place the arbiter lock is held
    /// across layer work — producers only pin it long enough to read.
    fn consume(&self, cell: &Arc<FeedCell>, pool: &Mutex<Vec<Arc<FeedCell>>>) {
        let mut st = cell.state.lock();
        {
            let mut inner = self.inner.lock();
            if self.crashed.load(Ordering::SeqCst) {
                // Crashed under this same lock: nothing consumed after
                // the kill point may touch the core or the (frozen) WAL.
                st.fed = false;
                st.retry_after_ms = None;
                st.meta = None;
                st.batch.replies.clear();
            } else {
                let now = self.now_us();
                let EventBatch { events, replies } = &mut st.batch;
                inner.layer.feed_into(now, events, replies);
                if let Some(d) = &self.durability {
                    // Heartbeat filter (same rule as the in-memory
                    // recorder): an all-tick batch that routed nothing
                    // changes no state and would swamp the log.
                    let heartbeat_only = events.iter().all(|e| matches!(e, ArbEvent::DeadlineTick));
                    if !(heartbeat_only && replies.is_empty()) {
                        let layer = &inner.layer;
                        let batch = PlacementBatch {
                            // The layer clamps time monotonic; record the
                            // clamped tick so replay feeds exactly what
                            // the core saw.
                            at: layer.now(),
                            events: events.clone(),
                            routed: replies.clone(),
                        };
                        d.append_batch(&batch, || layer.snapshot());
                    }
                }
                st.fed = true;
                st.retry_after_ms = st.session.and_then(|s| shed_retry(&st.batch.replies, s));
                if let Some(meta) = st.meta.take() {
                    // The shed case returns Overloaded to the client: the
                    // session never existed, so no durable record of it.
                    if st.retry_after_ms.is_none() {
                        if let Some(d) = &self.durability {
                            d.append_meta(&meta);
                        }
                    }
                }
                for r in &st.batch.replies {
                    match &r.command {
                        Command::Dispatch { lease, range } => {
                            inner.grants.insert(*lease, (r.device, *range));
                        }
                        Command::Resize { .. } | Command::Evict { .. } => {
                            inner.leases.apply(&r.command);
                        }
                        // Rejections are surfaced via `retry_after_ms`;
                        // promotion, preemption and reaping are
                        // informational here (the paired Resize/Dispatch
                        // in the same batch carry the state changes).
                        Command::PromoteStarved { .. }
                        | Command::Preempt { .. }
                        | Command::Reap { .. }
                        | Command::RejectOverloaded { .. } => {}
                    }
                }
            }
            self.granted.notify_all();
        }
        st.phase = CellPhase::Done;
        if st.detached {
            st.batch.clear();
            drop(st);
            pool.lock().push(cell.clone());
        } else {
            drop(st);
            cell.done.notify_all();
        }
    }
}

/// The arbiter consumer loop: drains the submit ring, parking briefly
/// when idle (producers unpark it on push, so the latency of a submit is
/// a wakeup, not a poll interval).
fn run_consumer(
    sh: Arc<ArbShared>,
    mut rx: RingConsumer<Arc<FeedCell>>,
    pool: Arc<Mutex<Vec<Arc<FeedCell>>>>,
) {
    loop {
        let mut drained = false;
        while let Some(cell) = rx.pop() {
            drained = true;
            sh.consume(&cell, &pool);
        }
        if sh.stop.load(Ordering::Acquire) && rx.is_empty() {
            // Shutdown drain: the flag is only raised once no producer
            // can push, so an empty ring here means exactly-once — every
            // submitted batch was consumed, none will arrive later.
            break;
        }
        if !drained {
            std::thread::park_timeout(Duration::from_micros(200));
        }
    }
}

/// The daemon's driver for the placement layer over the shared per-device
/// arbitration cores. Submitting threads fill pooled [`FeedCell`]s and
/// hand them to a dedicated consumer thread over a bounded lock-free
/// SPSC ring ([`crate::feed::ring`]); the consumer stamps each batch
/// with the monotonic microsecond clock, feeds the layer, appends to the
/// WAL, carries out the routed commands (resize and evict act on
/// dispatch handles immediately; dispatch grants are parked for the
/// waiting kernel thread together with their device), and wakes grant
/// waiters. Steady state, a submission allocates nothing — cells and
/// their buffers are reused at their high-water size.
struct ArbFrontend {
    sh: Arc<ArbShared>,
    /// Producer endpoint of the submit ring. The mutex serializes the
    /// many submitting threads into the single logical producer the ring
    /// requires; it is held only for the push itself.
    submit: Mutex<RingProducer<Arc<FeedCell>>>,
    /// Recycled cells, buffers warm.
    pool: Arc<Mutex<Vec<Arc<FeedCell>>>>,
    /// The consumer thread, joined on drop.
    consumer: Mutex<Option<JoinHandle<()>>>,
    /// Unpark handle for the consumer.
    consumer_thread: std::thread::Thread,
}

impl Drop for ArbFrontend {
    fn drop(&mut self) {
        self.sh.stop.store(true, Ordering::Release);
        self.consumer_thread.unpark();
        if let Some(h) = self.consumer.lock().take() {
            let _ = h.join();
        }
    }
}

/// Outcome of [`ArbFrontend::wait_grant`]: either a granted SM range, or
/// the daemon crashed while the kernel was queued.
enum GrantWait {
    /// Granted (device index, SM range).
    Granted(usize, SmRange),
    /// The daemon crashed. `ready_fed` tells whether this kernel's
    /// [`ArbEvent::KernelReady`] made it into the core (and the WAL)
    /// before the kill — adoption must feed a clearing `KernelFinished`
    /// exactly when it did.
    Crashed { ready_fed: bool },
}

impl ArbFrontend {
    fn new(layer: PlacementLayer, base_us: u64, durability: Option<Arc<Durability>>) -> Self {
        let sh = Arc::new(ArbShared {
            epoch: Instant::now(),
            base_us,
            inner: Mutex::new(ArbInner {
                layer,
                grants: BTreeMap::new(),
                leases: LeaseTable::new(),
            }),
            granted: Condvar::new(),
            crashed: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            durability,
        });
        let (tx, rx) = feed_ring::<Arc<FeedCell>>(FEED_RING_CAPACITY);
        let pool = Arc::new(Mutex::new(Vec::new()));
        let consumer = {
            let sh = sh.clone();
            let pool = pool.clone();
            std::thread::Builder::new()
                .name("slate-arbiter".to_string())
                .spawn(move || run_consumer(sh, rx, pool))
                .expect("spawn arbiter consumer thread")
        };
        let consumer_thread = consumer.thread().clone();
        Self {
            sh,
            submit: Mutex::new(tx),
            pool,
            consumer: Mutex::new(Some(consumer)),
            consumer_thread,
        }
    }

    fn crashed(&self) -> bool {
        self.sh.crashed.load(Ordering::SeqCst)
    }

    /// A warm cell from the pool (a fresh one only while the pool is
    /// still growing to the working-set size).
    fn checkout(&self) -> Arc<FeedCell> {
        self.pool
            .lock()
            .pop()
            .unwrap_or_else(|| Arc::new(FeedCell::new()))
    }

    /// Pushes `cell` into the submit ring, spinning through full-ring
    /// backpressure (the consumer is unparked first, so the wait is one
    /// drain away), then wakes the consumer.
    fn push(&self, cell: Arc<FeedCell>) {
        let mut tx = self.submit.lock();
        let mut item = cell;
        loop {
            match tx.push(item) {
                Ok(()) => break,
                Err(back) => {
                    item = back;
                    self.consumer_thread.unpark();
                    std::thread::yield_now();
                }
            }
        }
        drop(tx);
        self.consumer_thread.unpark();
    }

    /// Submits one batch and blocks until the consumer has fed it.
    /// Returns whether it was fed (`false` after a crash — the caller
    /// must treat the events as never having happened) and, when
    /// `session` is given, the retry hint if that session's request was
    /// shed. `meta` is appended to the WAL atomically with the batch,
    /// unless the batch was shed or unfed.
    fn submit(
        &self,
        events: &[ArbEvent],
        session: Option<u64>,
        meta: Option<WalRecord>,
    ) -> (bool, Option<u64>) {
        let cell = self.checkout();
        {
            let mut st = cell.state.lock();
            st.batch.clear();
            st.batch.events.extend_from_slice(events);
            st.session = session;
            st.meta = meta;
            st.detached = false;
            st.fed = false;
            st.retry_after_ms = None;
            st.phase = CellPhase::Queued;
        }
        self.push(cell.clone());
        let mut st = cell.state.lock();
        while st.phase != CellPhase::Done {
            cell.done.wait(&mut st);
        }
        let out = (st.fed, st.retry_after_ms);
        st.batch.clear();
        st.meta = None;
        drop(st);
        self.pool.lock().push(cell);
        out
    }

    /// Feeds one batch to the placement layer and carries out the routed
    /// commands, ignoring the outcome. After a crash this is a no-op.
    fn feed(&self, events: &[ArbEvent]) {
        let _ = self.submit(events, None, None);
    }

    /// Fire-and-forget heartbeat tick. When the ring is full the tick is
    /// dropped — the next one is a millisecond away, and real work is
    /// already queued to run the scheduling pass anyway.
    fn tick(&self) {
        let cell = self.checkout();
        {
            let mut st = cell.state.lock();
            st.batch.clear();
            st.batch.events.push(ArbEvent::DeadlineTick);
            st.session = None;
            st.meta = None;
            st.detached = true;
            st.fed = false;
            st.retry_after_ms = None;
            st.phase = CellPhase::Queued;
        }
        let mut tx = self.submit.lock();
        match tx.push(cell.clone()) {
            Ok(()) => {
                drop(tx);
                self.consumer_thread.unpark();
            }
            Err(_) => {
                drop(tx);
                self.pool.lock().push(cell);
            }
        }
    }

    /// The device `lease` currently routes to (its session's device, or
    /// the migration target after a rebalance eviction landed).
    fn lease_device(&self, lease: u64) -> usize {
        let inner = self.sh.inner.lock();
        inner
            .layer
            .device_of_lease(lease)
            .or_else(|| inner.layer.device_of_session(lease >> 16))
            .unwrap_or(0)
    }

    /// The in-flight migration target of `lease`, if a rebalance eviction
    /// is pending for it. Must be read *before* feeding the eviction's
    /// `KernelFinished` (which completes the migration and clears it).
    fn migration_target(&self, lease: u64) -> Option<usize> {
        self.sh.inner.lock().layer.migration_target(lease)
    }

    /// The placement layer's health state for `device`.
    fn device_health(&self, device: usize) -> HealthState {
        self.sh.inner.lock().layer.health_of(device)
    }

    /// Registers the kernel's dispatch handle, announces it ready, and
    /// blocks until its device's core grants it an SM range. The handle
    /// is registered before the ready event is submitted, so the consumer
    /// always finds it when the grant's commands need applying. The wait
    /// is bounded (the 1 ms heartbeat re-runs scheduling anyway), so a
    /// lost wakeup during teardown cannot wedge the thread; a crash
    /// unblocks every waiter with [`GrantWait::Crashed`].
    fn wait_grant(
        &self,
        lease: u64,
        ready: ArbEvent,
        handle: DispatchHandle,
        token: Option<FaultToken>,
    ) -> GrantWait {
        self.sh.inner.lock().leases.register(lease, handle, token);
        let (fed, _) = self.submit(std::slice::from_ref(&ready), None, None);
        if !fed {
            self.sh.inner.lock().leases.release(lease);
            return GrantWait::Crashed { ready_fed: false };
        }
        let mut inner = self.sh.inner.lock();
        loop {
            if let Some((device, range)) = inner.grants.remove(&lease) {
                return GrantWait::Granted(device, range);
            }
            if self.crashed() {
                inner.leases.release(lease);
                return GrantWait::Crashed { ready_fed: true };
            }
            let _ = self
                .sh
                .granted
                .wait_for(&mut inner, Duration::from_millis(5));
        }
    }

    /// Reports the dispatch finished (drained, faulted or evicted) and
    /// drops its handle; the lease's core re-schedules (survivor regrow,
    /// next waiter dispatch) in the same feed. Returns whether the finish
    /// actually landed — `false` means the daemon crashed first and the
    /// launch must be parked for adoption instead.
    fn finish(&self, lease: u64, ok: bool) -> bool {
        self.sh.inner.lock().leases.release(lease);
        let (fed, _) = self.submit(&[ArbEvent::KernelFinished { lease, ok }], None, None);
        fed
    }
}

/// The retry hint if `routed` shed the request just fed for `session`.
/// Each daemon feed carries a single request event, so any rejection in
/// the answer belongs to it.
fn shed_retry(routed: &[RoutedCommand], session: u64) -> Option<u64> {
    routed.iter().find_map(|r| match &r.command {
        Command::RejectOverloaded {
            session: s,
            retry_after_ms,
            ..
        } if *s == session => Some(*retry_after_ms),
        _ => None,
    })
}

/// One launch that was in flight (queued, granted, or running) when the
/// daemon crashed. Captured into the [`CrashScene`] and re-executed —
/// from its carried `slateIdx` progress — by the recovered daemon's
/// adoption pass, so no user block runs twice and none is lost.
struct CrashInflight {
    session: u64,
    lease: u64,
    launch_id: u64,
    kernel: Arc<dyn slate_kernels::kernel::GpuKernel>,
    task_size: u32,
    pinned_solo: bool,
    deadline_ms: Option<u64>,
    /// Blocks already executed (absolute `slateIdx` progress); adoption
    /// resumes the dispatch from here.
    progress: u64,
    /// Whether this launch's `KernelReady` reached the core (and the WAL)
    /// before the kill. At most the head job of a lease can be ready.
    ready: bool,
}

/// Everything that survives a [`SlateDaemon::crash`] in memory: the device
/// memory pool (device memory outlives a daemon process restart) and the
/// launches that were in flight. Hand it to [`SlateDaemon::recover`]
/// together with the durability directory to resurrect the fleet.
pub struct CrashScene {
    pool: DeviceMemoryPool,
    inflight: Vec<CrashInflight>,
}

impl CrashScene {
    /// Number of launches that were in flight at the kill point.
    pub fn inflight_launches(&self) -> usize {
        self.inflight.len()
    }
}

/// An epoch-tagged resumption credential: everything a client needs to
/// reattach its session to a recovered daemon. Minted by
/// [`crate::api::SlateClient::resume_token`]; redeemed by
/// [`SlateDaemon::resume`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResumeToken {
    /// Recovery epoch of the incarnation the client was connected to.
    /// Resumption is only valid into a *later* epoch.
    pub epoch: u64,
    /// The session to re-adopt.
    pub session: u64,
}

/// Shared daemon state.
struct DaemonShared {
    /// The primary device (`devices[0]`): kernel profiling and the
    /// injected-source pipeline are calibrated against it.
    cfg: DeviceConfig,
    /// The full device fleet, in placement-layer index order.
    devices: Vec<DeviceConfig>,
    pool: Mutex<DeviceMemoryPool>,
    injector: Mutex<InjectionCache>,
    profiles: Mutex<ProfileTable>,
    /// Driver of the shared arbitration core.
    arb: ArbFrontend,
    launches: Mutex<u64>,
    /// Hardware work-queue allocator for the funnelled server context.
    hyperq: Mutex<HyperQ>,
    /// Scripted fault schedule (empty outside fault-injection tests).
    faults: Mutex<FaultPlan>,
    /// Deadline applied to launches that don't carry their own.
    default_deadline_ms: Option<u64>,
    /// Raised by [`SlateDaemon::shutdown`]; refuses new connections.
    shutting_down: AtomicBool,
    /// Live session count + condvar for the shutdown drain.
    active_sessions: Mutex<usize>,
    session_drained: Condvar,
    /// Write-ahead log + snapshot sink (None: the daemon is ephemeral).
    /// The same handle the arbiter frontend appends batches through.
    durability: Option<Arc<Durability>>,
    /// Perfetto trace destination for the shutdown hook (None: no trace).
    trace_path: Option<std::path::PathBuf>,
    /// Launches deposited by their executing threads when a crash cut
    /// them off; drained into the [`CrashScene`] after session threads
    /// joined.
    crash_inflight: Mutex<Vec<CrashInflight>>,
    /// Per-session adoption threads of a recovered daemon, joined by the
    /// session's resumed thread (or [`SlateDaemon::join`]) before any new
    /// request runs — adopted and fresh work never interleave on a lease.
    adoptions: Mutex<BTreeMap<u64, JoinHandle<()>>>,
    /// Errors adopted launches hit (watchdog timeouts etc.), surfaced at
    /// the resumed client's next synchronize.
    adoption_errors: Mutex<BTreeMap<u64, Vec<String>>>,
    /// Sessions already resumed in this incarnation; a token is good for
    /// one reattach.
    resumed: Mutex<BTreeSet<u64>>,
    /// Launch ids adopted from the crash scene, per session: replayed
    /// client launches dedupe against these (and against WAL-completed
    /// ids), which is what makes resubmission idempotent.
    adopted_ids: Mutex<BTreeMap<u64, BTreeSet<u64>>>,
}

/// Construction-time daemon configuration beyond device geometry.
pub struct DaemonOptions {
    /// Kernel profile table seeded from a previous run.
    pub profiles: ProfileTable,
    /// Deterministic fault schedule (for tests; empty injects nothing).
    pub fault_plan: FaultPlan,
    /// Watchdog deadline, in milliseconds, for launches that don't set
    /// their own. `None` leaves unmarked launches unwatched.
    pub default_deadline_ms: Option<u64>,
    /// Admission limits (sessions, pending launches, memory watermark).
    /// The default admits everything — admission control is opt-in.
    pub admission: AdmissionLimits,
    /// Arbiter aging bound, in milliseconds: a kernel waiting longer for
    /// the device is dispatched solo (policy table notwithstanding) and
    /// counted in [`SlateDaemon::starvation_promotions`]. `None` disables
    /// aging.
    pub starvation_bound_ms: Option<u64>,
    /// SLO preemption bound, in milliseconds: a latency-critical arrival
    /// (declared via [`SlateDaemon::connect_with_slo`]) displaces a
    /// best-effort resident through the retreat/resize path within this
    /// logical-time bound. `None` (the default) disables preemption.
    pub preempt_bound_ms: Option<u64>,
    /// Record every arbitration event batch; [`SlateDaemon::arbiter_log`]
    /// returns the [`EventLog`], which replays to the identical command
    /// sequence, and [`SlateDaemon::placement_log`] the full multi-device
    /// [`PlacementLog`].
    pub record_arbiter: bool,
    /// The device fleet the daemon schedules over, one
    /// [`ArbiterCore`](crate::arbiter::ArbiterCore) each behind the
    /// placement layer. Empty (the default) means the single device passed
    /// to [`SlateDaemon::start_with_options`], preserving the one-GPU
    /// behaviour exactly.
    pub devices: Vec<DeviceConfig>,
    /// How new sessions are routed across [`DaemonOptions::devices`].
    /// Irrelevant (but harmless) on a single device.
    pub placement: PlacementPolicy,
    /// Cross-device rebalancing thresholds; `None` (the default) never
    /// migrates. A fired migration evicts the victim through the paper's
    /// retreat flag and resumes it on the target device at its carried
    /// `slateIdx` progress, so no user block runs twice.
    pub rebalance: Option<RebalanceConfig>,
    /// Per-device health state machine: quarantine window after repeated
    /// soft failures, seeded probation window before a recovered device
    /// is re-admitted as a routing target. The default windows are
    /// sensible for the simulator's logical-µs clock; tune them to the
    /// deployment's real failure cadence.
    pub health: HealthConfig,
    /// Fleet-level admission: per-device budgets multiplied by the
    /// *currently healthy* device count, so shedding tightens as the
    /// fleet degrades. The default admits everything.
    pub fleet: FleetAdmissionConfig,
    /// Crash consistency: with a [`DurabilityOptions`] set, every
    /// placement batch and session mutation is written ahead to a
    /// checksummed WAL under its directory, snapshotted every
    /// [`DurabilityOptions::snapshot_every`] batches, and
    /// [`SlateDaemon::recover`] can rebuild the daemon after a kill.
    /// `None` (the default) keeps the daemon fully in-memory.
    pub durability: Option<DurabilityOptions>,
    /// Write a Perfetto trace of the recorded run to this path when
    /// [`SlateDaemon::shutdown`] completes its drain (implies
    /// [`DaemonOptions::record_arbiter`]). Best-effort: a write failure
    /// never blocks the shutdown; call [`SlateDaemon::write_trace`]
    /// directly to observe the error. `None` (the default) emits
    /// nothing.
    pub trace_path: Option<std::path::PathBuf>,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        Self {
            profiles: ProfileTable::new(),
            fault_plan: FaultPlan::new(),
            default_deadline_ms: None,
            admission: AdmissionLimits::default(),
            starvation_bound_ms: None,
            preempt_bound_ms: None,
            record_arbiter: false,
            devices: Vec::new(),
            placement: PlacementPolicy::default(),
            rebalance: None,
            health: HealthConfig::default(),
            fleet: FleetAdmissionConfig::default(),
            durability: None,
            trace_path: None,
        }
    }
}

/// A running Slate daemon. Dropping the handle after every client
/// disconnected shuts the daemon down.
pub struct SlateDaemon {
    shared: Arc<DaemonShared>,
    next_session: Mutex<u64>,
    sessions: Mutex<Vec<JoinHandle<()>>>,
}

/// Client-side connection to the daemon — the transport `api::SlateClient`
/// wraps.
pub struct Connection {
    /// Session id assigned by the daemon.
    pub session: u64,
    /// Recovery epoch of the daemon incarnation that minted this
    /// connection (0 for a non-durable daemon). Carried into
    /// [`ResumeToken`]s so resumption is only honoured across a restart.
    pub epoch: u64,
    /// Smallest launch id a client of this connection may assign: 0 for a
    /// fresh session; one past the highest id the WAL has seen for a
    /// resumed one, so a client built fresh over a resumed connection
    /// never collides with (and gets silently deduplicated against) its
    /// predecessor's ids.
    pub launch_floor: u64,
    /// Command pipe, client-to-daemon.
    pub tx: Sender<Request>,
    /// Response pipe, daemon-to-client.
    pub rx: Receiver<Response>,
}

impl SlateDaemon {
    /// Starts a daemon managing a functional device of `cfg` geometry with
    /// `mem_capacity` bytes of device memory.
    pub fn start(cfg: DeviceConfig, mem_capacity: u64) -> Arc<Self> {
        Self::start_with_options(cfg, mem_capacity, DaemonOptions::default())
    }

    /// Starts a daemon seeded with a profile table from a previous run
    /// (the paper's daemon "records kernel profiles obtained from its
    /// previous runs").
    pub fn start_with_profiles(
        cfg: DeviceConfig,
        mem_capacity: u64,
        profiles: ProfileTable,
    ) -> Arc<Self> {
        Self::start_with_options(
            cfg,
            mem_capacity,
            DaemonOptions {
                profiles,
                ..DaemonOptions::default()
            },
        )
    }

    /// Starts a daemon with full [`DaemonOptions`] — profile seeding, a
    /// fault-injection plan, and the default watchdog deadline.
    pub fn start_with_options(
        cfg: DeviceConfig,
        mem_capacity: u64,
        options: DaemonOptions,
    ) -> Arc<Self> {
        let devices = if options.devices.is_empty() {
            vec![cfg]
        } else {
            options.devices.clone()
        };
        let mut layer = PlacementLayer::new(
            devices.clone(),
            PlacementConfig {
                policy: options.placement.clone(),
                arbiter: ArbiterConfig {
                    enable_corun: true,
                    enable_resize: true,
                    starvation_bound_us: options.starvation_bound_ms.map(|ms| ms * 1000),
                    preempt_bound_us: options.preempt_bound_ms.map(|ms| ms * 1000),
                    limits: options.admission,
                },
                rebalance: options.rebalance.clone(),
                health: options.health.clone(),
                fleet: options.fleet,
            },
        );
        // The genesis anchor (snapshot 0 of segment 0) captures the
        // pristine fleet, so the full WAL replays from a fresh layer.
        let durability = options.durability.map(|opts| {
            Durability::start(opts, 0, 0, &layer.snapshot(), DurableMeta::default())
                .expect("initialize durability directory")
        });
        if options.record_arbiter || options.trace_path.is_some() {
            layer.start_recording();
        }
        let shared = Arc::new(DaemonShared {
            cfg: devices[0].clone(),
            devices,
            pool: Mutex::new(DeviceMemoryPool::new(mem_capacity)),
            injector: Mutex::new(InjectionCache::new()),
            profiles: Mutex::new(options.profiles),
            arb: ArbFrontend::new(layer, 0, durability.clone()),
            launches: Mutex::new(0),
            hyperq: Mutex::new(HyperQ::with_default_connections()),
            faults: Mutex::new(options.fault_plan),
            default_deadline_ms: options.default_deadline_ms,
            shutting_down: AtomicBool::new(false),
            active_sessions: Mutex::new(0),
            session_drained: Condvar::new(),
            durability,
            trace_path: options.trace_path,
            crash_inflight: Mutex::new(Vec::new()),
            adoptions: Mutex::new(BTreeMap::new()),
            adoption_errors: Mutex::new(BTreeMap::new()),
            resumed: Mutex::new(BTreeSet::new()),
            adopted_ids: Mutex::new(BTreeMap::new()),
        });
        spawn_heartbeat(Arc::downgrade(&shared));
        Arc::new(Self {
            shared,
            next_session: Mutex::new(0),
            sessions: Mutex::new(Vec::new()),
        })
    }

    /// Snapshot of the kernel profile table (persist it with
    /// [`ProfileTable::save`] and reload through
    /// [`SlateDaemon::start_with_profiles`]).
    pub fn profiles(&self) -> ProfileTable {
        self.shared.profiles.lock().clone()
    }

    /// Accepts a new client; spawns its session thread (one per process,
    /// kept alive until the process disconnects — §IV-A2). Refused with
    /// [`SlateError::ShuttingDown`] once [`SlateDaemon::shutdown`] ran,
    /// and shed with [`SlateError::Overloaded`] at the
    /// [`AdmissionLimits::max_sessions`] bound.
    pub fn connect(self: &Arc<Self>, user: &str) -> Result<Connection, SlateError> {
        self.connect_with_slo(user, SloClass::BestEffort)
    }

    /// [`SlateDaemon::connect`] with a declared SLO class. A
    /// latency-critical session's arrivals displace best-effort residents
    /// (when [`DaemonOptions::preempt_bound_ms`] is set); the class is
    /// durable — it survives crash/recovery with the session record — and
    /// follows the session's work across migrations.
    pub fn connect_with_slo(
        self: &Arc<Self>,
        user: &str,
        slo: SloClass,
    ) -> Result<Connection, SlateError> {
        if self.shared.shutting_down.load(Ordering::Acquire) {
            return Err(SlateError::ShuttingDown);
        }
        let session = {
            let mut n = self.next_session.lock();
            *n += 1;
            *n
        };
        {
            // The durable session record rides in the submission itself:
            // the consumer appends it right after the admission batch,
            // under one arbiter lock, so a crash can separate neither
            // from the other (and a shed admission records nothing).
            let meta = self
                .shared
                .durability
                .as_ref()
                .map(|_| WalRecord::SessionMeta {
                    session,
                    user: user.to_string(),
                    slo,
                });
            // Best-effort sessions (the default) emit no declaration, so
            // pre-SLO event streams are unchanged.
            let mut events = Vec::with_capacity(2);
            if slo != SloClass::BestEffort {
                events.push(ArbEvent::SloArrival {
                    session,
                    class: slo,
                });
            }
            events.push(ArbEvent::SessionOpened { session });
            let (fed, retry) = self.shared.arb.submit(&events, Some(session), meta);
            if !fed {
                return Err(SlateError::ShuttingDown);
            }
            if let Some(retry) = retry {
                return Err(SlateError::Overloaded {
                    retry_after_ms: retry,
                });
            }
        }
        let (tx_req, rx_req) = unbounded::<Request>();
        let (tx_resp, rx_resp) = unbounded::<Response>();
        let shared = self.shared.clone();
        let user = user.to_string();
        *self.shared.active_sessions.lock() += 1;
        let handle = std::thread::Builder::new()
            .name(format!("slate-session-{session}"))
            .spawn(move || {
                let st = SessionState::fresh(session);
                session_loop(shared.clone(), session, user, rx_req, tx_resp, st);
                let mut active = shared.active_sessions.lock();
                *active -= 1;
                shared.session_drained.notify_all();
            })
            .expect("spawn session thread");
        self.sessions.lock().push(handle);
        Ok(Connection {
            session,
            epoch: self.epoch(),
            launch_floor: 0,
            tx: tx_req,
            rx: rx_resp,
        })
    }

    /// The daemon's recovery epoch: 0 at first start, incremented by every
    /// [`SlateDaemon::recover`]. Non-durable daemons are always epoch 0.
    pub fn epoch(&self) -> u64 {
        self.shared.durability.as_ref().map_or(0, |d| d.epoch())
    }

    /// WAL append failures swallowed so far (durable daemons only; the
    /// daemon keeps serving on a sick disk, trading durability for
    /// availability, but the count is observable).
    pub fn wal_io_errors(&self) -> u64 {
        self.shared.durability.as_ref().map_or(0, |d| d.io_errors())
    }

    /// Begins a graceful shutdown: new connections are refused with
    /// [`SlateError::ShuttingDown`], the arbiter stops co-scheduling and
    /// serializes the remaining kernels solo, and the call blocks until
    /// every in-flight session has drained or `drain_deadline` elapsed.
    /// Returns `true` when fully drained; `false` if sessions remain (the
    /// drain keeps progressing in the background either way).
    pub fn shutdown(&self, drain_deadline: Duration) -> bool {
        self.shared.shutting_down.store(true, Ordering::Release);
        self.shared.arb.feed(&[ArbEvent::DrainBegan]);
        let deadline = Instant::now() + drain_deadline;
        let drained = {
            let mut active = self.shared.active_sessions.lock();
            loop {
                if *active == 0 {
                    break true;
                }
                if self
                    .shared
                    .session_drained
                    .wait_until(&mut active, deadline)
                    .timed_out()
                {
                    break *active == 0;
                }
            }
        };
        // Best-effort shutdown trace: everything decision-relevant is in
        // the recording by now (the drain only waits on session threads),
        // and a full disk must not turn a clean drain into a hang.
        if let Some(path) = self.shared.trace_path.clone() {
            let _ = self.write_trace(&path);
        }
        drained
    }

    /// Exports the recorded run as a Perfetto trace to `path` — the
    /// explicit form of the [`DaemonOptions::trace_path`] shutdown hook.
    /// The recording is snapshotted, not consumed: [`SlateDaemon::
    /// arbiter_log`] / [`SlateDaemon::placement_log`] still work
    /// afterwards, and the daemon keeps recording. Errors when the
    /// daemon was started without recording enabled.
    pub fn write_trace(&self, path: &std::path::Path) -> Result<(), String> {
        let log = self
            .shared
            .arb
            .sh
            .inner
            .lock()
            .layer
            .log_snapshot()
            .ok_or_else(|| {
                "daemon was not recording (set record_arbiter or trace_path)".to_string()
            })?;
        crate::trace::export::export_placement_log_to_file(&log, path)
    }

    /// Whether [`SlateDaemon::shutdown`] has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::Acquire)
    }

    /// Total kernel launches served (daemon statistics).
    pub fn launches_served(&self) -> u64 {
        *self.shared.launches.lock()
    }

    /// Injection-cache statistics: (hits, misses).
    pub fn injection_stats(&self) -> (u64, u64) {
        self.shared.injector.lock().stats()
    }

    /// Live device allocations across all sessions.
    pub fn live_allocations(&self) -> usize {
        self.shared.pool.lock().live_allocations()
    }

    /// Hardware work-queue lanes registered on the funnelled context
    /// (one per (session, stream) the daemon has served).
    pub fn hyperq_lanes(&self) -> usize {
        self.shared.hyperq.lock().lanes()
    }

    /// Kernels evicted by the watchdog since the daemon started, across
    /// every device.
    pub fn watchdog_evictions(&self) -> u64 {
        self.shared.arb.sh.inner.lock().layer.evictions()
    }

    /// Sessions torn down because the client vanished without Disconnect.
    pub fn reaped_sessions(&self) -> u64 {
        self.shared.arb.sh.inner.lock().layer.reaped()
    }

    /// Kernels currently resident across every device (0–2 per device).
    pub fn arbiter_residents(&self) -> usize {
        self.shared.arb.sh.inner.lock().layer.residents()
    }

    /// Fault-plan rules that have fired so far (0 without injection).
    pub fn faults_fired(&self) -> usize {
        self.shared.faults.lock().fired()
    }

    /// Snapshot of the daemon-wide launch queue: depth, high-water mark,
    /// admitted and shed counts, summed across every device's core.
    pub fn queue_stats(&self) -> QueueStats {
        self.shared.arb.sh.inner.lock().layer.queue_stats()
    }

    /// Snapshot of the admission counters (sessions, launches, deadline
    /// rejections, memory sheds), summed across every device's core.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.shared.arb.sh.inner.lock().layer.admission_stats()
    }

    /// Starved arbiter waiters promoted to solo dispatch (0 unless
    /// [`DaemonOptions::starvation_bound_ms`] is set).
    pub fn starvation_promotions(&self) -> u64 {
        self.shared.arb.sh.inner.lock().layer.promotions()
    }

    /// Best-effort residents displaced by latency-critical arrivals
    /// (0 unless [`DaemonOptions::preempt_bound_ms`] is set).
    pub fn slo_preemptions(&self) -> u64 {
        self.shared.arb.sh.inner.lock().layer.preemptions()
    }

    /// Snapshot of the placement counters: fleet size, routed sessions,
    /// rebalances fired and migrations completed.
    pub fn placement_stats(&self) -> PlacementStats {
        self.shared.arb.sh.inner.lock().layer.stats()
    }

    /// Declares `device` hard-down (operator action or an external health
    /// probe). The placement layer marks it [`HealthState::Failed`],
    /// evacuates every live lease to a healthy device, and excludes it
    /// from routing until [`SlateDaemon::recover_device`].
    pub fn fail_device(&self, device: usize) {
        self.shared.arb.feed(&[ArbEvent::DeviceDown {
            device: device as u64,
            hard: true,
        }]);
    }

    /// Declares `device` serviceable again. The device enters a seeded
    /// probation window (it must stay quiet before taking traffic); a
    /// flap during probation sends it back to quarantine.
    pub fn recover_device(&self, device: usize) {
        self.shared.arb.feed(&[ArbEvent::DeviceUp {
            device: device as u64,
        }]);
    }

    /// The placement layer's health verdict for `device`.
    pub fn device_health(&self, device: usize) -> HealthState {
        self.shared.arb.device_health(device)
    }

    /// Takes device 0's recorded arbitration [`EventLog`] (present only
    /// when the daemon was started with
    /// [`DaemonOptions::record_arbiter`]). On a single-device daemon this
    /// is the complete record, exactly as before; multi-device runs use
    /// [`SlateDaemon::placement_log`] (whose
    /// [`split`](crate::placement::replay::split) recovers every
    /// per-device log, this one included).
    pub fn arbiter_log(&self) -> Option<EventLog> {
        self.shared
            .arb
            .sh
            .inner
            .lock()
            .layer
            .take_core_logs()
            .into_iter()
            .next()
            .flatten()
    }

    /// Takes the recorded multi-device [`PlacementLog`] (present only when
    /// the daemon was started with [`DaemonOptions::record_arbiter`]). It
    /// [`verify`](crate::placement::replay::verify)s against a fresh
    /// replay and [`split`](crate::placement::replay::split)s into
    /// ordinary per-device [`EventLog`]s.
    pub fn placement_log(&self) -> Option<PlacementLog> {
        self.shared.arb.sh.inner.lock().layer.take_log()
    }

    /// One consistent-enough snapshot of everything the daemon reports:
    /// queue backlog, admission counters, and the fault-tolerance
    /// counters. The single stable observability surface.
    pub fn metrics(&self) -> DaemonMetrics {
        let sh = &self.shared;
        let lock_recoveries = sh.pool.recoveries()
            + sh.injector.recoveries()
            + sh.profiles.recoveries()
            + sh.launches.recoveries()
            + sh.hyperq.recoveries()
            + sh.faults.recoveries()
            + sh.active_sessions.recoveries()
            + sh.arb.sh.inner.recoveries()
            + self.next_session.recoveries()
            + self.sessions.recoveries();
        DaemonMetrics {
            queue: self.queue_stats(),
            admission: self.admission_stats(),
            launches_served: self.launches_served(),
            live_allocations: self.live_allocations(),
            hyperq_lanes: self.hyperq_lanes(),
            arbiter_residents: self.arbiter_residents(),
            watchdog_evictions: self.watchdog_evictions(),
            reaped_sessions: self.reaped_sessions(),
            starvation_promotions: self.starvation_promotions(),
            faults_fired: self.faults_fired(),
            placement: self.placement_stats(),
            lock_recoveries,
        }
    }

    /// Waits for all session threads to finish (after clients disconnect),
    /// and for any still-running adoption pass of a recovered daemon.
    pub fn join(&self) {
        let handles: Vec<_> = std::mem::take(&mut *self.sessions.lock());
        for h in handles {
            let _ = h.join();
        }
        let adoptions: Vec<_> = std::mem::take(&mut *self.shared.adoptions.lock())
            .into_values()
            .collect();
        for h in adoptions {
            let _ = h.join();
        }
    }

    /// Kills the daemon at an arbitrary instant, as a `SIGKILL` would:
    /// no drain, no goodbye to clients, no final WAL flush beyond what
    /// already hit the disk. Under the arbiter lock the crash flag is
    /// raised and the WAL frozen — the kill point is one well-defined
    /// cut through the event stream. Session threads are then joined
    /// (each exits at its next request boundary; running kernels are
    /// evicted through the retreat flag and deposit their carried
    /// progress), and everything that survives a process death in the
    /// real deployment — device memory, in-flight work — is returned as
    /// the [`CrashScene`] for [`SlateDaemon::recover`].
    pub fn crash(&self) -> CrashScene {
        {
            let inner = self.shared.arb.sh.inner.lock();
            self.shared.arb.sh.crashed.store(true, Ordering::SeqCst);
            self.shared.shutting_down.store(true, Ordering::Release);
            if let Some(d) = &self.shared.durability {
                d.freeze();
            }
            // Evict every in-flight dispatch: workers observe the retreat
            // flag at their next block boundary and the run() calls return
            // with carried progress.
            for lease in inner.leases.leases() {
                inner.leases.apply(&Command::Evict { lease });
            }
            self.shared.arb.sh.granted.notify_all();
        }
        self.join();
        let inflight = std::mem::take(&mut *self.shared.crash_inflight.lock());
        let pool = std::mem::replace(&mut *self.shared.pool.lock(), DeviceMemoryPool::new(0));
        CrashScene { pool, inflight }
    }

    /// Resurrects a crashed daemon from its durability directory plus the
    /// in-memory [`CrashScene`]. State is rebuilt from the newest readable
    /// snapshot and the WAL suffix (torn tails are truncated, corruption
    /// reported — never panicked on); the epoch is bumped, a fresh WAL
    /// segment with a new anchor snapshot is opened, and every in-flight
    /// launch from the scene is re-adopted at its carried progress on a
    /// per-session adoption thread. Crashed clients reattach with
    /// [`SlateDaemon::resume`].
    ///
    /// Of `options`, the scheduling fields (`devices`, `placement`,
    /// `admission`, ...) are ignored — the fleet and its configuration
    /// come from the recovered snapshot; `profiles`, `fault_plan`,
    /// `default_deadline_ms`, `record_arbiter` and `durability` apply.
    /// `options.durability` must point at the crashed daemon's directory.
    pub fn recover(scene: CrashScene, options: DaemonOptions) -> Result<Arc<Self>, SlateError> {
        let dur_opts = options.durability.ok_or_else(|| {
            SlateError::Other("recover requires DaemonOptions::durability".into())
        })?;
        let rec = recover_dir(&dur_opts.dir)
            .map_err(|e| SlateError::Other(format!("recovery failed: {e}")))?;
        let mut layer = rec.layer;
        let epoch = rec.epoch + 1;
        // Resume the logical clock past the crashed incarnation's last
        // tick so the stitched WAL stays monotonic.
        let base_us = layer.now() + 1;
        let anchor = layer.snapshot();
        let devices = anchor.devices();
        let durability = Durability::start(
            dur_opts,
            rec.last_segment + 1,
            epoch,
            &anchor,
            rec.meta.clone(),
        )
        .map_err(|e| SlateError::Other(format!("reopen durability: {e}")))?;
        durability.append_meta(&WalRecord::Epoch { epoch });
        if options.record_arbiter || options.trace_path.is_some() {
            layer.start_recording();
        }
        let shared = Arc::new(DaemonShared {
            cfg: devices[0].clone(),
            devices,
            pool: Mutex::new(scene.pool),
            injector: Mutex::new(InjectionCache::new()),
            profiles: Mutex::new(options.profiles),
            arb: ArbFrontend::new(layer, base_us, Some(durability.clone())),
            launches: Mutex::new(0),
            hyperq: Mutex::new(HyperQ::with_default_connections()),
            faults: Mutex::new(options.fault_plan),
            default_deadline_ms: options.default_deadline_ms,
            shutting_down: AtomicBool::new(false),
            active_sessions: Mutex::new(0),
            session_drained: Condvar::new(),
            durability: Some(durability),
            trace_path: options.trace_path,
            crash_inflight: Mutex::new(Vec::new()),
            adoptions: Mutex::new(BTreeMap::new()),
            adoption_errors: Mutex::new(BTreeMap::new()),
            resumed: Mutex::new(BTreeSet::new()),
            adopted_ids: Mutex::new(BTreeMap::new()),
        });
        spawn_heartbeat(Arc::downgrade(&shared));
        let daemon = Arc::new(Self {
            shared,
            next_session: Mutex::new(rec.meta.next_session.max(1) - 1),
            sessions: Mutex::new(Vec::new()),
        });
        daemon.adopt(scene.inflight);
        Ok(daemon)
    }

    /// Spawns one adoption thread per crashed session, re-executing its
    /// in-flight launches in their original order from their carried
    /// progress.
    fn adopt(self: &Arc<Self>, inflight: Vec<CrashInflight>) {
        let mut by_session: BTreeMap<u64, Vec<CrashInflight>> = BTreeMap::new();
        for job in inflight {
            self.shared
                .adopted_ids
                .lock()
                .entry(job.session)
                .or_default()
                .insert(job.launch_id);
            by_session.entry(job.session).or_default().push(job);
        }
        for (session, jobs) in by_session {
            let shared = self.shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("slate-adopt-{session}"))
                .spawn(move || adopt_session(&shared, session, jobs))
                .expect("spawn adoption thread");
            self.shared.adoptions.lock().insert(session, handle);
        }
    }

    /// Reattaches a crashed client's session. The token must come from an
    /// earlier epoch of this durability lineage, name a session the WAL
    /// says is still open, and not have been redeemed already — otherwise
    /// [`SlateError::ResumeRejected`]. The returned [`Connection`] serves
    /// the same session id: the pointer map is restored from durable
    /// metadata, the pointer watermark never regresses, and launch ids the
    /// WAL has seen (completed or adopted) are deduplicated server-side,
    /// so the client may blindly resubmit everything unacknowledged.
    pub fn resume(self: &Arc<Self>, token: ResumeToken) -> Result<Connection, SlateError> {
        let Some(durability) = &self.shared.durability else {
            return Err(SlateError::ResumeRejected(
                "daemon is not durable".to_string(),
            ));
        };
        if self.shared.shutting_down.load(Ordering::Acquire) {
            return Err(SlateError::ShuttingDown);
        }
        let epoch = durability.epoch();
        if token.epoch >= epoch {
            return Err(SlateError::ResumeRejected(format!(
                "token epoch {} is not from an earlier incarnation (current epoch {epoch})",
                token.epoch
            )));
        }
        let meta = durability.meta();
        let Some(smeta) = meta.sessions.get(&token.session) else {
            return Err(SlateError::ResumeRejected(format!(
                "session {} is unknown to the log",
                token.session
            )));
        };
        if !smeta.open {
            return Err(SlateError::ResumeRejected(format!(
                "session {} was closed before the crash",
                token.session
            )));
        }
        if !self.shared.resumed.lock().insert(token.session) {
            return Err(SlateError::ResumeRejected(format!(
                "session {} was already resumed",
                token.session
            )));
        }
        let session = token.session;
        let launch_floor = smeta
            .admitted
            .keys()
            .chain(smeta.done.keys())
            .max()
            .map_or(0, |m| m + 1);
        let st = SessionState::restore(session, smeta, &self.shared);
        let user = smeta.user.clone();
        let (tx_req, rx_req) = unbounded::<Request>();
        let (tx_resp, rx_resp) = unbounded::<Response>();
        let shared = self.shared.clone();
        *self.shared.active_sessions.lock() += 1;
        let handle = std::thread::Builder::new()
            .name(format!("slate-session-{session}"))
            .spawn(move || {
                session_loop(shared.clone(), session, user, rx_req, tx_resp, st);
                let mut active = shared.active_sessions.lock();
                *active -= 1;
                shared.session_drained.notify_all();
            })
            .expect("spawn session thread");
        self.sessions.lock().push(handle);
        Ok(Connection {
            session,
            epoch,
            launch_floor,
            tx: tx_req,
            rx: rx_resp,
        })
    }
}

/// Re-executes one crashed session's in-flight launches, in order, from
/// their carried progress. Grouped by lease: if the lease's head launch
/// had announced `KernelReady` before the kill, the recovered core still
/// holds that residency/waiter entry — a clearing `KernelFinished` is fed
/// exactly once before the re-runs, mirroring the eviction the crash
/// implied.
fn adopt_session(shared: &Arc<DaemonShared>, session: u64, jobs: Vec<CrashInflight>) {
    let mut order: Vec<u64> = Vec::new();
    let mut by_lease: BTreeMap<u64, Vec<CrashInflight>> = BTreeMap::new();
    for job in jobs {
        if !by_lease.contains_key(&job.lease) {
            order.push(job.lease);
        }
        by_lease.entry(job.lease).or_default().push(job);
    }
    for lease in order {
        let jobs = by_lease.remove(&lease).unwrap_or_default();
        if jobs.first().is_some_and(|j| j.ready) {
            shared
                .arb
                .feed(&[ArbEvent::KernelFinished { lease, ok: false }]);
        }
        for job in jobs {
            let out = execute_kernel(
                shared,
                job.lease,
                job.launch_id,
                job.kernel,
                job.task_size,
                job.pinned_solo,
                job.deadline_ms,
                job.progress,
            );
            if let Err(e) = out {
                shared
                    .adoption_errors
                    .lock()
                    .entry(session)
                    .or_default()
                    .push(e);
            }
        }
    }
}

/// Spawns the arbiter heartbeat: a daemon-lifetime thread that feeds
/// [`ArbEvent::DeadlineTick`] every millisecond, which is what fires
/// watchdog evictions and starvation promotions. Holds only a weak
/// reference, so it exits once the daemon (and its sessions) are gone.
fn spawn_heartbeat(shared: Weak<DaemonShared>) {
    std::thread::Builder::new()
        .name("slate-heartbeat".to_string())
        .spawn(move || loop {
            std::thread::sleep(Duration::from_millis(1));
            match shared.upgrade() {
                Some(sh) => {
                    // Fire-and-forget: a dropped tick (full ring) is
                    // made up by the next one a millisecond later.
                    sh.arb.tick();
                }
                None => break,
            }
        })
        .expect("spawn heartbeat thread");
}

/// Per-session state: the pointer-mapping hash table of §IV-A1, plus the
/// crash-resumption bookkeeping (launch-id dedupe, resumed flag).
struct SessionState {
    ptr_map: HashMap<SlatePtr, DevicePtr>,
    next_ptr: u64,
    /// Launch ids whose work is already done (per the WAL) or adopted
    /// from the crash scene: a resumed client's blind resubmission of
    /// these is acknowledged without re-execution.
    dedupe: BTreeSet<u64>,
    /// Whether this session reattached after a crash; its thread joins
    /// the session's adoption pass before serving anything.
    resumed: bool,
}

impl SessionState {
    fn fresh(session: u64) -> Self {
        Self {
            ptr_map: HashMap::new(),
            next_ptr: session << 32,
            dedupe: BTreeSet::new(),
            resumed: false,
        }
    }

    /// Rebuilds the state of a crashed session from its durable metadata:
    /// the pointer map is restored entry for entry (device memory
    /// survived in the [`CrashScene`] pool), the pointer watermark never
    /// regresses below any pointer ever handed out, and the dedupe set is
    /// completed-ids ∪ adopted-ids.
    fn restore(
        session: u64,
        meta: &crate::durability::SessionMeta,
        shared: &Arc<DaemonShared>,
    ) -> Self {
        let ptr_map = meta
            .allocs
            .iter()
            .map(|(&p, a)| (SlatePtr(p), DevicePtr(a.device_ptr)))
            .collect();
        let mut dedupe: BTreeSet<u64> = meta.done.keys().copied().collect();
        if let Some(adopted) = shared.adopted_ids.lock().get(&session) {
            dedupe.extend(adopted.iter().copied());
        }
        Self {
            ptr_map,
            next_ptr: meta.next_ptr.max((session << 32) + 1) - 1,
            dedupe,
            resumed: true,
        }
    }
}

/// A launch job forwarded to a stream worker thread. Admission already
/// happened at request time ([`ArbEvent::LaunchRequested`]); the lane's
/// `execute_kernel` completes it by feeding
/// [`ArbEvent::KernelFinished`].
struct StreamJob {
    launch_id: u64,
    kernel: Arc<dyn slate_kernels::kernel::GpuKernel>,
    task_size: u32,
    pinned_solo: bool,
    deadline_ms: Option<u64>,
}

/// A message for a stream lane's in-order queue: either a kernel launch or
/// a sync barrier carrying the channel to acknowledge on.
enum LaneMsg {
    Job(StreamJob),
    Barrier(Sender<()>),
}

/// One non-default CUDA stream of a session: its own in-order queue served
/// by a dedicated thread (the paper's per-(process, stream) queues).
/// Launches and barriers share a single FIFO, so a barrier acknowledges
/// only after every launch enqueued before it has executed.
struct StreamLane {
    tx: Sender<LaneMsg>,
    handle: JoinHandle<()>,
}

fn spawn_stream_lane(
    shared: Arc<DaemonShared>,
    lease: u64,
    errors: Arc<Mutex<Vec<String>>>,
) -> StreamLane {
    let (tx, rx) = unbounded::<LaneMsg>();
    let handle = std::thread::spawn(move || {
        while let Ok(msg) = rx.recv() {
            match msg {
                LaneMsg::Job(job) => {
                    let out = execute_kernel(
                        &shared,
                        lease,
                        job.launch_id,
                        job.kernel,
                        job.task_size,
                        job.pinned_solo,
                        job.deadline_ms,
                        0,
                    );
                    if let Err(e) = out {
                        errors.lock().push(e);
                    }
                }
                LaneMsg::Barrier(ack) => {
                    let _ = ack.send(());
                }
            }
        }
    });
    StreamLane { tx, handle }
}

fn session_loop(
    shared: Arc<DaemonShared>,
    session: u64,
    user: String,
    rx: Receiver<Request>,
    tx: Sender<Response>,
    mut st: SessionState,
) {
    let mut lanes: HashMap<u32, StreamLane> = HashMap::new();
    let stream_errors: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let shutdown_lanes = |lanes: &mut HashMap<u32, StreamLane>| {
        for (_, lane) in lanes.drain() {
            drop(lane.tx);
            let _ = lane.handle.join();
        }
    };
    if st.resumed {
        // Adopted launches finish before any new request runs, so adopted
        // and replayed work never interleave on a lease; their errors
        // surface at the client's next synchronize like any stream error.
        let handle = shared.adoptions.lock().remove(&session);
        if let Some(h) = handle {
            let _ = h.join();
        }
        let errs = shared
            .adoption_errors
            .lock()
            .remove(&session)
            .unwrap_or_default();
        stream_errors.lock().extend(errs);
    }
    // Whether the client said goodbye; anything else is a reap.
    let mut clean_exit = false;
    // Whether the daemon crashed under us: exit silently, preserving all
    // state for recovery (no frees, no close event, no farewell).
    let mut crashed_exit = false;
    loop {
        // Bounded recv so a crash can't leave this thread parked forever
        // on a quiet client.
        let req = match rx.recv_timeout(Duration::from_millis(5)) {
            Ok(req) => req,
            Err(RecvTimeoutError::Timeout) => {
                if shared.arb.crashed() {
                    crashed_exit = true;
                    break;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        if shared.arb.crashed() {
            // The kill point precedes this request: it never happened.
            crashed_exit = true;
            break;
        }
        // Injected channel drop: sever both pipes mid-request, as if the
        // client process died. The reap path below cleans up.
        if let Some(FaultKind::ChannelDrop) = shared.faults.lock().fire(FaultSite::Request, None) {
            break;
        }
        let resp = match req {
            Request::Malloc(bytes) => {
                let (used, capacity) = {
                    let pool = shared.pool.lock();
                    (pool.used(), pool.capacity())
                };
                let (_, retry) = shared.arb.submit(
                    &[ArbEvent::MallocRequested {
                        session,
                        used,
                        capacity,
                        bytes,
                    }],
                    Some(session),
                    None,
                );
                match retry {
                    Some(retry) => Response::Err(
                        SlateError::Overloaded {
                            retry_after_ms: retry,
                        }
                        .to_wire(),
                    ),
                    None => match shared.pool.lock().alloc(bytes) {
                        Ok(dev) => {
                            st.next_ptr += 1;
                            let p = SlatePtr(st.next_ptr);
                            st.ptr_map.insert(p, dev);
                            if let Some(d) = &shared.durability {
                                d.append_meta(&WalRecord::Alloc {
                                    session,
                                    slate_ptr: p.0,
                                    device_ptr: dev.0,
                                    bytes,
                                });
                            }
                            Response::Ptr(p)
                        }
                        Err(_) => {
                            Response::Err(SlateError::OutOfMemory { requested: bytes }.to_wire())
                        }
                    },
                }
            }
            Request::Free(p) => match st.ptr_map.remove(&p) {
                Some(dev) => {
                    // Log the free *before* releasing the backing store: a
                    // crash in between leaks pool bytes (harmless), while
                    // the opposite order would resurrect a dangling
                    // pointer into a resumed session's map.
                    if let Some(d) = &shared.durability {
                        d.append_meta(&WalRecord::Free {
                            session,
                            slate_ptr: p.0,
                        });
                    }
                    match shared.pool.lock().free(dev) {
                        Ok(()) => Response::Ok,
                        Err(e) => Response::Err(SlateError::Other(e).to_wire()),
                    }
                }
                None => Response::Err(SlateError::InvalidPointer { ptr: p.0 }.to_wire()),
            },
            Request::MemcpyH2D { ptr, offset, data } => {
                stall_if_injected(&shared);
                match resolve(&shared, &st, ptr) {
                    Ok(buf) => {
                        buf.copy_from_host(offset, &data);
                        Response::Ok
                    }
                    Err(e) => Response::Err(e),
                }
            }
            Request::MemcpyD2H { ptr, offset, len } => {
                stall_if_injected(&shared);
                match resolve(&shared, &st, ptr) {
                    Ok(buf) => {
                        let mut out = vec![0u8; len];
                        buf.copy_to_host(offset, &mut out);
                        Response::Data(out.into())
                    }
                    Err(e) => Response::Err(e),
                }
            }
            Request::Launch(cmd) => {
                let stream = cmd.stream;
                let deadline_ms = cmd.deadline_ms;
                let launch_id = cmd.launch_id;
                if st.dedupe.contains(&launch_id) {
                    // A resumed client's blind resubmission of work that
                    // already completed (per the WAL) or was adopted from
                    // the crash scene: idempotent, nothing to do.
                    continue;
                }
                match prepare_launch(&shared, &user, &st, cmd) {
                    Ok((kernel, task_size, pinned_solo)) => {
                        // Admission: bounded pending-launch queues (per
                        // session and global) plus an up-front deadline
                        // feasibility check against the estimated queue
                        // wait. Shed launches reply Overloaded, surfaced
                        // at the client's next synchronize.
                        let est_ms = shared
                            .profiles
                            .lock()
                            .estimate_solo_ms(kernel.name(), kernel.grid().total_blocks());
                        let lease = (session << 16) | stream as u64;
                        let (fed, retry) = shared.arb.submit(
                            &[ArbEvent::LaunchRequested {
                                session,
                                lease,
                                est_ms,
                                deadline_ms,
                            }],
                            Some(session),
                            None,
                        );
                        if !fed {
                            // Crashed before admission: the launch never
                            // happened; the resumed client will resubmit.
                            crashed_exit = true;
                            break;
                        }
                        if let Some(retry) = retry {
                            Response::Err(
                                SlateError::Overloaded {
                                    retry_after_ms: retry,
                                }
                                .to_wire(),
                            )
                        } else {
                            if let Some(d) = &shared.durability {
                                d.append_meta(&WalRecord::LaunchAdmitted {
                                    session,
                                    launch_id,
                                    lease,
                                });
                            }
                            if stream == 0 {
                                // Default stream: in-order on the session
                                // thread.
                                let out = execute_kernel(
                                    &shared,
                                    lease,
                                    launch_id,
                                    kernel,
                                    task_size,
                                    pinned_solo,
                                    deadline_ms,
                                    0,
                                );
                                match out {
                                    Ok(()) => continue,
                                    Err(e) => Response::Err(e),
                                }
                            } else {
                                let lane = lanes.entry(stream).or_insert_with(|| {
                                    spawn_stream_lane(shared.clone(), lease, stream_errors.clone())
                                });
                                let _ = lane.tx.send(LaneMsg::Job(StreamJob {
                                    launch_id,
                                    kernel,
                                    task_size,
                                    pinned_solo,
                                    deadline_ms,
                                }));
                                continue; // asynchronous: no reply
                            }
                        }
                    }
                    Err(e) => Response::Err(e),
                }
            }
            Request::Sync => {
                // Fence every stream lane, then surface collected errors.
                for lane in lanes.values() {
                    let (ack_tx, ack_rx) = unbounded::<()>();
                    if lane.tx.send(LaneMsg::Barrier(ack_tx)).is_ok() {
                        let _ = ack_rx.recv();
                    }
                }
                let errs: Vec<String> = std::mem::take(&mut *stream_errors.lock());
                for e in errs {
                    let _ = tx.send(Response::Err(e));
                }
                Response::Ok
            }
            Request::Disconnect => {
                shutdown_lanes(&mut lanes);
                // Free everything the client leaked (process teardown).
                let mut pool = shared.pool.lock();
                for (_, dev) in st.ptr_map.drain() {
                    let _ = pool.free(dev);
                }
                let _ = tx.send(Response::Ok);
                clean_exit = true;
                break;
            }
        };
        if tx.send(resp).is_err() {
            // The client's receiver is gone: reap below.
            break;
        }
    }
    // Lanes are joined on every exit path: on a crash their queued jobs
    // drain through `execute_kernel`, which deposits each one into the
    // crash scene (in order) instead of running it.
    shutdown_lanes(&mut lanes);
    if crashed_exit || shared.arb.crashed() {
        // Crashed: the session is *not* over — its memory, its arbiter
        // residency (as recorded in the WAL) and its in-flight launches
        // all carry over to the recovered daemon. Touch nothing.
        return;
    }
    // Either a clean Disconnect (cleanup already ran, the drains below are
    // no-ops) or the client vanished — process died, dropped its sender, or
    // an injected ChannelDrop severed the pipe. Reap the session exactly
    // like a Disconnect: drain stream lanes, reclaim device memory, release
    // any arbiter residency (the surviving co-runner regrows to the full
    // device) and the session's Hyper-Q lanes. Lanes are joined first, so
    // no launch of this session is in flight when the core sees the close.
    {
        let mut pool = shared.pool.lock();
        for (_, dev) in st.ptr_map.drain() {
            let _ = pool.free(dev);
        }
    }
    shared.arb.feed(&[if clean_exit {
        ArbEvent::SessionClosed { session }
    } else {
        ArbEvent::SessionSevered { session }
    }]);
    if let Some(d) = &shared.durability {
        d.append_meta(&WalRecord::SessionClosed { session });
    }
    shared
        .hyperq
        .lock()
        .retire_lanes(|_, stream| stream >> 16 == session as u32);
}

/// Applies an injected memcpy stall, if the plan has one armed.
fn stall_if_injected(shared: &DaemonShared) {
    if let Some(FaultKind::MemcpyStall { millis }) =
        shared.faults.lock().fire(FaultSite::Memcpy, None)
    {
        std::thread::sleep(Duration::from_millis(millis));
    }
}

fn resolve(
    shared: &DaemonShared,
    st: &SessionState,
    ptr: SlatePtr,
) -> Result<Arc<GpuBuffer>, String> {
    let dev = st
        .ptr_map
        .get(&ptr)
        .ok_or_else(|| SlateError::InvalidPointer { ptr: ptr.0 }.to_wire())?;
    shared.pool.lock().buffer(*dev)
}

/// Resolves pointers, runs the injection pipeline, and builds the kernel —
/// everything that needs the session's state.
fn prepare_launch(
    shared: &Arc<DaemonShared>,
    user: &str,
    st: &SessionState,
    cmd: LaunchCmd,
) -> Result<(Arc<dyn slate_kernels::kernel::GpuKernel>, u32, bool), String> {
    // Resolve the client's pointers through the session hash table.
    let buffers = cmd
        .ptrs
        .iter()
        .map(|&p| resolve(shared, st, p))
        .collect::<Result<Vec<_>, _>>()?;
    let kernel = (cmd.factory)(buffers);

    // Source injection through the per-user cache (the NVRTC stage).
    if let Some(src) = &cmd.source {
        shared
            .injector
            .lock()
            .get_or_inject(user, src, cmd.task_size);
    }
    Ok((kernel, cmd.task_size, cmd.pinned_solo))
}

/// A kernel whose every block parks on a [`FaultToken`] until the watchdog
/// cancels it — the functional model of a kernel that never terminates.
struct HungKernel {
    inner: Arc<dyn slate_kernels::kernel::GpuKernel>,
    token: FaultToken,
}

impl slate_kernels::kernel::GpuKernel for HungKernel {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn grid(&self) -> slate_kernels::grid::GridDim {
        self.inner.grid()
    }
    fn perf(&self) -> slate_gpu_sim::perf::KernelPerf {
        self.inner.perf()
    }
    fn run_block(&self, _block: slate_kernels::grid::BlockCoord) {
        // Block until evicted; the worker then observes the retreat flag
        // at its next task boundary and exits.
        self.token.block_until_cancelled();
    }
}

/// Profiles, transforms and dispatches a prepared kernel under the shared
/// arbitration core. `lease` identifies the (session, stream) queue.
/// `deadline_ms` (or the daemon default) arms the core's watchdog at
/// dispatch; past it the kernel is evicted and `SlateError::Timeout`
/// returned. Every admitted launch — including one that dies to an
/// injected fault before dispatch — feeds a final
/// [`ArbEvent::KernelFinished`], which is what balances the admission
/// gauges.
///
/// `start_from` is the absolute `slateIdx` progress to resume at: 0 for a
/// fresh launch, the carried progress for a crash-adopted one. If the
/// daemon crashes at any point of this call the launch is deposited into
/// the crash scene at its current progress and `Ok` returned — the
/// recovered daemon's adoption pass owns it from there, and the WAL-level
/// `LaunchDone` record is written *before* the completion is fed to the
/// core, so a kill between the two re-drains zero blocks rather than
/// re-executing any.
#[allow(clippy::too_many_arguments)]
fn execute_kernel(
    shared: &Arc<DaemonShared>,
    lease: u64,
    launch_id: u64,
    kernel: Arc<dyn slate_kernels::kernel::GpuKernel>,
    task_size: u32,
    pinned_solo: bool,
    deadline_ms: Option<u64>,
    start_from: u64,
) -> Result<(), String> {
    let session = lease >> 16;
    // The untransformed kernel, as deposited for adoption on a crash.
    let original = kernel.clone();
    let deposit = |progress: u64, ready: bool| {
        shared.crash_inflight.lock().push(CrashInflight {
            session,
            lease,
            launch_id,
            kernel: original.clone(),
            task_size,
            pinned_solo,
            deadline_ms,
            progress,
            ready,
        });
    };
    // All sessions share the daemon's single device context; each
    // (session, stream) lane gets a Hyper-Q connection on it.
    const SERVER_CONTEXT: u64 = 0;
    shared
        .hyperq
        .lock()
        .assign(SERVER_CONTEXT, (lease & 0xffff_ffff) as u32);

    // Launch-site fault injection: an armed LaunchFault rejects the launch
    // outright; an armed KernelHang swaps in a kernel that parks every
    // block on a token only the watchdog's eviction cancels.
    let mut hang_token = None;
    match shared
        .faults
        .lock()
        .fire(FaultSite::Launch, Some(kernel.name()))
    {
        Some(FaultKind::LaunchFault) => {
            shared
                .arb
                .feed(&[ArbEvent::KernelFinished { lease, ok: false }]);
            return Err(SlateError::KernelFault(format!(
                "injected device fault in '{}'",
                kernel.name()
            ))
            .to_wire());
        }
        Some(FaultKind::KernelHang) => hang_token = Some(FaultToken::new()),
        _ => {}
    }
    let kernel: Arc<dyn slate_kernels::kernel::GpuKernel> = match &hang_token {
        Some(token) => Arc::new(HungKernel {
            inner: kernel,
            token: token.clone(),
        }),
        None => kernel,
    };

    // First-run profiling and classification.
    let perf = kernel.perf();
    let grid_blocks = kernel.grid().total_blocks();
    let (class, demand) = {
        let mut table = shared.profiles.lock();
        let p = table.get_or_profile(&shared.cfg, &perf, grid_blocks.max(10_000));
        (p.class, p.sm_demand)
    };

    // Transform, then wait for the lease's device core to grant an SM
    // range. A rebalance migration evicts the run and loops back here:
    // the lease's route now points at the target device, and the dispatch
    // resumes from the carried absolute `slateIdx` progress, so no user
    // block executes twice.
    let transformed = TransformedKernel::new(kernel);
    let started = Instant::now();
    let mut carried: u64 = start_from;
    let (out, ran_on) = loop {
        let device = &shared.devices[shared.arb.lease_device(lease)];
        let dispatcher = Dispatcher::resume(
            device.clone(),
            transformed.clone(),
            task_size,
            SmRange::all(device.num_sms),
            carried,
        );
        let handle = dispatcher.handle();
        let ready = ArbEvent::KernelReady {
            session: lease >> 16,
            lease,
            class,
            sm_demand: demand,
            pinned_solo,
            // The core arms the watchdog at dispatch (not while queued:
            // waiting behind a long co-runner is not the kernel's fault).
            deadline_ms: deadline_ms.or(shared.default_deadline_ms),
        };
        let (granted_on, range) =
            match shared
                .arb
                .wait_grant(lease, ready, handle.clone(), hang_token.clone())
            {
                GrantWait::Granted(device, range) => (device, range),
                GrantWait::Crashed { ready_fed } => {
                    deposit(carried, ready_fed);
                    return Ok(());
                }
            };
        if range != SmRange::all(shared.devices[granted_on].num_sms) {
            // Bind the first worker launch onto the granted partition (the
            // raced retreat at worst costs one immediate relaunch).
            handle.resize(range);
        }
        let out = dispatcher.run();
        if shared.arb.crashed() {
            // The eviction that ended this run was the crash's blanket
            // eviction, not a scheduling decision: park at the carried
            // progress.
            deposit(out.blocks, true);
            return Ok(());
        }
        // A migration target must be read before KernelFinished lands:
        // that feed completes the migration and flips the lease's route.
        let migrated = out.evicted && shared.arb.migration_target(lease).is_some();
        if !out.evicted {
            // Durable point of no return: once `LaunchDone` is on disk the
            // launch will never re-execute, even if the completion feed
            // below loses the race against a crash.
            if let Some(d) = &shared.durability {
                d.append_meta(&WalRecord::LaunchDone { session, launch_id });
            }
        }
        let fed = shared.arb.finish(lease, !out.evicted);
        if !fed {
            // Crash landed between the run and its completion feed: the
            // adoption re-run resumes at full progress and drains zero
            // blocks, closing the launch in the recovered core.
            deposit(out.blocks, true);
            return Ok(());
        }
        if migrated {
            carried = out.blocks;
            continue;
        }
        break (out, granted_on);
    };
    *shared.launches.lock() += 1;
    if out.evicted {
        // An eviction with no migration target means the run is over. If
        // the device it ran on dropped out of service (and the fleet had
        // nowhere to evacuate it), report the lost device rather than a
        // watchdog timeout so clients retry against a healed fleet.
        if shared.arb.device_health(ran_on).out_of_service() {
            return Err(SlateError::DeviceLost {
                device: ran_on as u64,
            }
            .to_wire());
        }
        return Err(SlateError::Timeout {
            elapsed_ms: started.elapsed().as_millis() as u64,
        }
        .to_wire());
    }
    debug_assert!(out.blocks == grid_blocks);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SlateClient;
    use slate_gpu_sim::perf::KernelPerf;
    use slate_kernels::grid::{BlockCoord, GridDim};
    use slate_kernels::kernel::GpuKernel;

    /// out[i] = in[i] * 2 over a 1-D grid of 128-wide blocks.
    struct Double {
        n: usize,
        input: Arc<GpuBuffer>,
        out: Arc<GpuBuffer>,
    }
    impl GpuKernel for Double {
        fn name(&self) -> &str {
            "double"
        }
        fn grid(&self) -> GridDim {
            GridDim::d1((self.n as u32).div_ceil(128).max(1))
        }
        fn perf(&self) -> KernelPerf {
            KernelPerf::synthetic("double", 500.0, 1024.0)
        }
        fn run_block(&self, b: BlockCoord) {
            let lo = b.x as usize * 128;
            for i in lo..(lo + 128).min(self.n) {
                self.out.store_f32(i, self.input.load_f32(i) * 2.0);
            }
        }
    }

    #[test]
    fn end_to_end_malloc_copy_launch_sync_readback() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(4), 1 << 24);
        let client = SlateClient::new(daemon.connect("tester").unwrap());
        let n = 1000usize;
        let input: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let in_ptr = client.malloc((n * 4) as u64).unwrap();
        let out_ptr = client.malloc((n * 4) as u64).unwrap();
        let bytes: Vec<u8> = input.iter().flat_map(|f| f.to_le_bytes()).collect();
        client.memcpy_h2d(in_ptr, 0, bytes.into()).unwrap();
        client
            .launch_with(
                vec![in_ptr, out_ptr],
                10,
                None,
                move |bufs| -> Arc<dyn GpuKernel> {
                    Arc::new(Double {
                        n,
                        input: bufs[0].clone(),
                        out: bufs[1].clone(),
                    })
                },
            )
            .unwrap();
        client.synchronize().unwrap();
        let back = client.memcpy_d2h(out_ptr, 0, n * 4).unwrap();
        for i in 0..n {
            let v = f32::from_le_bytes(back[i * 4..i * 4 + 4].try_into().unwrap());
            assert_eq!(v, i as f32 * 2.0, "element {i}");
        }
        client.free(in_ptr).unwrap();
        client.free(out_ptr).unwrap();
        assert_eq!(daemon.live_allocations(), 0);
        assert_eq!(daemon.launches_served(), 1);
        client.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn streams_execute_concurrently_and_sync_fences_all() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(4), 1 << 24);
        let client = SlateClient::new(daemon.connect("streamer").unwrap());
        let n = 4_000usize;
        // Four streams, each doubling its own buffer; plus the default
        // stream touching a fifth buffer.
        let mut ptrs = Vec::new();
        for s in 0..5u32 {
            let p = client.malloc((n * 4) as u64).unwrap();
            let init: Vec<f32> = (0..n).map(|i| (i + s as usize) as f32).collect();
            client.upload_f32(p, &init).unwrap();
            ptrs.push(p);
        }
        for (s, &p) in ptrs.iter().enumerate() {
            let launch = move |bufs: Vec<Arc<GpuBuffer>>| -> Arc<dyn GpuKernel> {
                Arc::new(Double {
                    n,
                    input: bufs[0].clone(),
                    out: bufs[0].clone(),
                })
            };
            if s == 0 {
                client.launch_with(vec![p], 10, None, launch).unwrap();
            } else {
                client
                    .launch_on_stream(s as u32, vec![p], 10, launch)
                    .unwrap();
            }
        }
        client.synchronize().unwrap();
        for (s, &p) in ptrs.iter().enumerate() {
            let out = client.download_f32(p, n).unwrap();
            for i in (0..n).step_by(397) {
                assert_eq!(out[i], 2.0 * (i + s) as f32, "stream {s} element {i}");
            }
        }
        assert_eq!(daemon.launches_served(), 5);
        client.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn same_stream_launches_are_ordered() {
        // Two doublings on one stream: must observe x4, proving in-order
        // execution within a stream.
        let daemon = SlateDaemon::start(DeviceConfig::tiny(4), 1 << 22);
        let client = SlateClient::new(daemon.connect("ordered").unwrap());
        let n = 2_000usize;
        let p = client.malloc((n * 4) as u64).unwrap();
        client.upload_f32(p, &vec![1.0f32; n]).unwrap();
        for _ in 0..2 {
            client
                .launch_on_stream(3, vec![p], 10, move |bufs| -> Arc<dyn GpuKernel> {
                    Arc::new(Double {
                        n,
                        input: bufs[0].clone(),
                        out: bufs[0].clone(),
                    })
                })
                .unwrap();
        }
        client.synchronize().unwrap();
        let out = client.download_f32(p, n).unwrap();
        assert!(out.iter().step_by(101).all(|&v| v == 4.0));
        client.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn stream_launch_error_surfaces_at_sync() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1 << 20);
        let client = SlateClient::new(daemon.connect("oops").unwrap());
        let good = client.malloc(1024).unwrap();
        // Bad pointer on a non-zero stream: prepare fails synchronously in
        // the session, so the error is queued ahead of the sync Ok.
        client
            .launch_on_stream(
                7,
                vec![SlatePtr(0xbad)],
                10,
                move |bufs| -> Arc<dyn GpuKernel> {
                    Arc::new(Double {
                        n: 16,
                        input: bufs[0].clone(),
                        out: bufs[0].clone(),
                    })
                },
            )
            .unwrap();
        assert!(client.synchronize().is_err());
        // Session remains healthy.
        client.upload_f32(good, &[9.0]).unwrap();
        assert_eq!(client.download_f32(good, 1).unwrap(), vec![9.0]);
        client.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn invalid_pointer_is_rejected() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1 << 20);
        let client = SlateClient::new(daemon.connect("tester").unwrap());
        assert!(client.memcpy_d2h(SlatePtr(0xdead), 0, 4).is_err());
        assert!(client.free(SlatePtr(0xdead)).is_err());
        client.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn sessions_are_isolated() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1 << 20);
        let a = SlateClient::new(daemon.connect("alice").unwrap());
        let b = SlateClient::new(daemon.connect("bob").unwrap());
        let pa = a.malloc(64).unwrap();
        // Bob cannot touch Alice's allocation handle.
        assert!(b.memcpy_d2h(pa, 0, 4).is_err());
        a.disconnect().unwrap();
        b.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn dropped_client_reclaims_allocations() {
        // No Disconnect: the client's process "dies"; the session thread
        // must still reclaim its device memory.
        let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1 << 20);
        {
            let client = SlateClient::new(daemon.connect("vanishing").unwrap());
            let _a = client.malloc(256).unwrap();
            let _b = client.malloc(256).unwrap();
            assert_eq!(daemon.live_allocations(), 2);
            drop(client); // Connection dropped, no Disconnect request
        }
        daemon.join();
        assert_eq!(daemon.live_allocations(), 0);
    }

    #[test]
    fn profile_table_survives_daemon_restarts() {
        let dir = std::env::temp_dir().join("slate-daemon-profiles");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profiles.json");
        let n = 2_000usize;
        let run_once = |profiles| {
            let daemon = SlateDaemon::start_with_profiles(DeviceConfig::tiny(4), 1 << 22, profiles);
            let client = SlateClient::new(daemon.connect("persist").unwrap());
            let input = client.malloc((n * 4) as u64).unwrap();
            let out = client.malloc((n * 4) as u64).unwrap();
            client
                .launch_with(vec![input, out], 10, None, move |bufs| {
                    Arc::new(Double {
                        n,
                        input: bufs[0].clone(),
                        out: bufs[1].clone(),
                    }) as Arc<dyn GpuKernel>
                })
                .unwrap();
            client.synchronize().unwrap();
            client.disconnect().unwrap();
            daemon.join();
            daemon.profiles()
        };
        let table = run_once(crate::profile::ProfileTable::new());
        assert_eq!(table.len(), 1);
        table.save(&path).unwrap();
        // Second daemon run: seeded table, kernel is already profiled.
        let reloaded = crate::profile::ProfileTable::load(&path).unwrap();
        assert!(reloaded.get("double").is_some());
        let table2 = run_once(reloaded);
        assert_eq!(table2.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disconnect_frees_leaked_allocations() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1 << 20);
        let client = SlateClient::new(daemon.connect("leaky").unwrap());
        let _p1 = client.malloc(512).unwrap();
        let _p2 = client.malloc(512).unwrap();
        assert_eq!(daemon.live_allocations(), 2);
        client.disconnect().unwrap();
        daemon.join();
        assert_eq!(daemon.live_allocations(), 0);
    }

    fn double_factory(n: usize) -> impl FnOnce(Vec<Arc<GpuBuffer>>) -> Arc<dyn GpuKernel> {
        move |bufs| {
            Arc::new(Double {
                n,
                input: bufs[0].clone(),
                out: bufs[0].clone(),
            }) as Arc<dyn GpuKernel>
        }
    }

    #[test]
    fn watchdog_evicts_hung_kernel_and_surfaces_timeout() {
        let daemon = SlateDaemon::start_with_options(
            DeviceConfig::tiny(4),
            1 << 22,
            crate::daemon::DaemonOptions {
                fault_plan: slate_gpu_sim::fault::FaultPlan::new().hang_kernel("double", 1),
                ..Default::default()
            },
        );
        let client = SlateClient::new(daemon.connect("hangs").unwrap());
        let n = 2_000usize;
        let p = client.malloc((n * 4) as u64).unwrap();
        client.upload_f32(p, &vec![1.0f32; n]).unwrap();
        client
            .launch_with_deadline(vec![p], 10, 50, double_factory(n))
            .unwrap();
        let err = client.synchronize().unwrap_err();
        assert!(
            matches!(err, SlateError::Timeout { elapsed_ms } if elapsed_ms >= 40),
            "expected watchdog timeout, got {err}"
        );
        assert_eq!(daemon.watchdog_evictions(), 1);
        assert_eq!(daemon.arbiter_residents(), 0, "SM range reclaimed");
        // The session stays healthy: the hang rule fired, a relaunch runs.
        client
            .launch_with_deadline(vec![p], 10, 5_000, double_factory(n))
            .unwrap();
        client.synchronize().unwrap();
        assert_eq!(client.download_f32(p, 1).unwrap(), vec![2.0]);
        client.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn injected_launch_fault_is_structured() {
        let daemon = SlateDaemon::start_with_options(
            DeviceConfig::tiny(2),
            1 << 20,
            crate::daemon::DaemonOptions {
                fault_plan: slate_gpu_sim::fault::FaultPlan::new().fault_launch("double", 1),
                ..Default::default()
            },
        );
        let client = SlateClient::new(daemon.connect("faulty").unwrap());
        let p = client.malloc(1024).unwrap();
        client
            .launch_with(vec![p], 10, None, double_factory(16))
            .unwrap();
        let err = client.synchronize().unwrap_err();
        assert!(matches!(err, SlateError::KernelFault(_)), "{err}");
        assert_eq!(daemon.faults_fired(), 1);
        client.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn sync_reports_first_error_and_counts_the_rest() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1 << 20);
        let client = SlateClient::new(daemon.connect("multi-oops").unwrap());
        // Two bad launches; prepare fails in request order on the session
        // thread, so the replies are ordered too.
        for bad in [0xbad1u64, 0xbad2] {
            client
                .launch_on_stream(5, vec![SlatePtr(bad)], 10, double_factory(16))
                .unwrap();
        }
        let err = client.synchronize().unwrap_err();
        assert_eq!(
            err,
            SlateError::InvalidPointer { ptr: 0xbad1 },
            "first error wins"
        );
        assert_eq!(client.last_sync_failures(), 2);
        // A clean sync resets the count.
        client.synchronize().unwrap();
        assert_eq!(client.last_sync_failures(), 0);
        client.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn injected_channel_drop_reaps_the_session() {
        let daemon = SlateDaemon::start_with_options(
            DeviceConfig::tiny(2),
            1 << 20,
            crate::daemon::DaemonOptions {
                fault_plan: slate_gpu_sim::fault::FaultPlan::new().drop_channel(2),
                ..Default::default()
            },
        );
        let client = SlateClient::new(daemon.connect("doomed").unwrap());
        let _p = client.malloc(256).unwrap();
        assert_eq!(daemon.live_allocations(), 1);
        // Second request hits the injected drop: the daemon severs the
        // channel as if the process died.
        let err = client.malloc(256).unwrap_err();
        assert_eq!(err, SlateError::Disconnected);
        daemon.join();
        assert_eq!(daemon.live_allocations(), 0, "allocations reaped");
        assert_eq!(daemon.reaped_sessions(), 1);
    }

    #[test]
    fn dropped_client_counts_as_reaped() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1 << 20);
        drop(SlateClient::new(daemon.connect("ghost").unwrap()));
        daemon.join();
        assert_eq!(daemon.reaped_sessions(), 1);
        // A clean disconnect is not a reap.
        let c = SlateClient::new(daemon.connect("polite").unwrap());
        c.disconnect().unwrap();
        daemon.join();
        assert_eq!(daemon.reaped_sessions(), 1);
    }

    #[test]
    fn injected_memcpy_stall_delays_the_copy() {
        let daemon = SlateDaemon::start_with_options(
            DeviceConfig::tiny(2),
            1 << 20,
            crate::daemon::DaemonOptions {
                fault_plan: slate_gpu_sim::fault::FaultPlan::new().stall_memcpy(1, 40),
                ..Default::default()
            },
        );
        let client = SlateClient::new(daemon.connect("stalled").unwrap());
        let p = client.malloc(64).unwrap();
        let t0 = Instant::now();
        client.upload_f32(p, &[1.0, 2.0]).unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(30),
            "stall was injected: {:?}",
            t0.elapsed()
        );
        // Copies still land correctly after the stall.
        assert_eq!(client.download_f32(p, 2).unwrap(), vec![1.0, 2.0]);
        client.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn shutdown_refuses_new_connections_and_drains() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1 << 20);
        let client = SlateClient::new(daemon.connect("last-tenant").unwrap());
        assert!(!daemon.is_shutting_down());
        let d2 = daemon.clone();
        let drainer = std::thread::spawn(move || d2.shutdown(Duration::from_secs(5)));
        // Existing sessions keep being served during the drain.
        while !daemon.is_shutting_down() {
            std::thread::yield_now();
        }
        let p = client.malloc(64).unwrap();
        client.upload_f32(p, &[3.0]).unwrap();
        match daemon.connect("too-late") {
            Err(SlateError::ShuttingDown) => {}
            Err(e) => panic!("expected ShuttingDown, got {e}"),
            Ok(_) => panic!("connect must be refused during shutdown"),
        }
        client.disconnect().unwrap();
        assert!(drainer.join().unwrap(), "drain completed");
        daemon.join();
        assert_eq!(daemon.live_allocations(), 0);
    }

    #[test]
    fn shutdown_drain_deadline_expires_with_sessions_left() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1 << 20);
        let client = SlateClient::new(daemon.connect("lingerer").unwrap());
        // The client never disconnects within the deadline.
        assert!(!daemon.shutdown(Duration::from_millis(30)));
        // The drain keeps progressing afterwards.
        client.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn multi_device_daemon_routes_sessions_and_records_placement() {
        let daemon = SlateDaemon::start_with_options(
            DeviceConfig::tiny(4),
            1 << 22,
            DaemonOptions {
                devices: vec![DeviceConfig::tiny(4), DeviceConfig::tiny(4)],
                record_arbiter: true,
                ..Default::default()
            },
        );
        let n = 2_000usize;
        let clients: Vec<_> = (0..2)
            .map(|i| SlateClient::new(daemon.connect(&format!("tenant-{i}")).unwrap()))
            .collect();
        for client in &clients {
            let p = client.malloc((n * 4) as u64).unwrap();
            client.upload_f32(p, &vec![1.0f32; n]).unwrap();
            client
                .launch_with(vec![p], 10, None, double_factory(n))
                .unwrap();
            client.synchronize().unwrap();
            assert_eq!(client.download_f32(p, 1).unwrap(), vec![2.0]);
        }
        let stats = daemon.placement_stats();
        assert_eq!(stats.devices, 2);
        assert_eq!(stats.sessions_routed, 2, "both sessions were routed");
        assert_eq!(daemon.metrics().placement, stats);
        for client in clients {
            client.disconnect().unwrap();
        }
        daemon.join();
        // The recorded placement log verifies and splits into per-device
        // logs; round-robin put one session (and its dispatch) on each.
        let log = daemon.placement_log().expect("recording was enabled");
        crate::placement::replay::verify(&log).expect("placement log replays identically");
        let cores = crate::placement::replay::split(&log).expect("log splits per device");
        assert_eq!(cores.len(), 2);
        for (d, core_log) in cores.iter().enumerate() {
            assert!(
                core_log.batches.iter().any(|b| b
                    .commands
                    .iter()
                    .any(|c| matches!(c, Command::Dispatch { .. }))),
                "device {d} dispatched its session's kernel"
            );
            crate::arbiter::replay::verify(core_log)
                .unwrap_or_else(|e| panic!("per-device log {d} replays: {e}"));
        }
    }

    /// `Double` with a per-block stall, slow enough for the heartbeat-fed
    /// rebalancer to migrate it mid-run.
    struct SlowDouble {
        n: usize,
        buf: Arc<GpuBuffer>,
    }
    impl GpuKernel for SlowDouble {
        fn name(&self) -> &str {
            "slow-double"
        }
        fn grid(&self) -> GridDim {
            GridDim::d1((self.n as u32).div_ceil(64).max(1))
        }
        fn perf(&self) -> KernelPerf {
            KernelPerf::synthetic("slow-double", 500.0, 1024.0)
        }
        fn run_block(&self, b: BlockCoord) {
            std::thread::sleep(Duration::from_micros(500));
            let lo = b.x as usize * 64;
            for i in lo..(lo + 64).min(self.n) {
                self.buf.store_f32(i, self.buf.load_f32(i) * 2.0);
            }
        }
    }

    #[test]
    fn multi_device_rebalance_migrates_a_running_kernel_exactly_once() {
        // Both sessions pinned to device 0; device 1 idle. The weighted
        // imbalance crosses the threshold as soon as both kernels are
        // pending, the heartbeat fires a migration, and the victim resumes
        // on device 1 from its carried progress. Every element must read
        // exactly 2.0 afterwards: a re-executed block would leave 4.0.
        let daemon = SlateDaemon::start_with_options(
            DeviceConfig::tiny(4),
            1 << 24,
            DaemonOptions {
                devices: vec![DeviceConfig::tiny(4), DeviceConfig::tiny(4)],
                placement: PlacementPolicy::Affinity {
                    pins: [(1u64, 0usize), (2, 0)].into_iter().collect(),
                },
                rebalance: Some(RebalanceConfig {
                    high_ms: 15,
                    low_ms: 5,
                    cooldown_us: 0,
                    seed: 9,
                }),
                ..Default::default()
            },
        );
        let n = 4_096usize;
        let clients: Vec<_> = (0..2)
            .map(|i| SlateClient::new(daemon.connect(&format!("pinned-{i}")).unwrap()))
            .collect();
        let ptrs: Vec<_> = clients
            .iter()
            .map(|c| {
                let p = c.malloc((n * 4) as u64).unwrap();
                c.upload_f32(p, &vec![1.0f32; n]).unwrap();
                c.launch_with(vec![p], 4, None, move |bufs| {
                    Arc::new(SlowDouble {
                        n,
                        buf: bufs[0].clone(),
                    }) as Arc<dyn GpuKernel>
                })
                .unwrap();
                p
            })
            .collect();
        for (client, &p) in clients.iter().zip(&ptrs) {
            client.synchronize().unwrap();
            let out = client.download_f32(p, n).unwrap();
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, 2.0, "element {i}: every block exactly once");
            }
        }
        let stats = daemon.placement_stats();
        assert_eq!(stats.rebalances, 1, "the imbalance fired one migration");
        assert_eq!(stats.migrations_completed, 1);
        for client in clients {
            client.disconnect().unwrap();
        }
        daemon.join();
    }

    #[test]
    fn multi_device_daemon_evacuates_a_failed_device_mid_run() {
        // One session pinned to device 0, running a kernel slow enough to
        // still be on-device when the operator fails its domain. The
        // evacuation must move the running lease to device 1 and resume it
        // from carried progress: every element reads exactly 2.0 afterwards
        // (a lost block would leave 1.0, a re-run block 4.0).
        let daemon = SlateDaemon::start_with_options(
            DeviceConfig::tiny(4),
            1 << 24,
            DaemonOptions {
                devices: vec![DeviceConfig::tiny(4), DeviceConfig::tiny(4)],
                placement: PlacementPolicy::Affinity {
                    pins: [(1u64, 0usize)].into_iter().collect(),
                },
                ..Default::default()
            },
        );
        let n = 16_384usize;
        let client = SlateClient::new(daemon.connect("doomed-domain").unwrap());
        let p = client.malloc((n * 4) as u64).unwrap();
        client.upload_f32(p, &vec![1.0f32; n]).unwrap();
        client
            .launch_with(vec![p], 4, None, move |bufs| {
                Arc::new(SlowDouble {
                    n,
                    buf: bufs[0].clone(),
                }) as Arc<dyn GpuKernel>
            })
            .unwrap();
        // Let the kernel get granted and run some blocks on device 0
        // (the full grid needs tens of milliseconds), then pull the
        // device out from under it.
        std::thread::sleep(Duration::from_millis(10));
        daemon.fail_device(0);
        assert_eq!(daemon.device_health(0), HealthState::Failed);
        client.synchronize().unwrap();
        let out = client.download_f32(p, n).unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 2.0, "element {i}: evacuated exactly once, not lost");
        }
        let stats = daemon.placement_stats();
        assert!(stats.evacuations >= 1, "the failure evacuated its leases");
        assert!(stats.migrations_completed >= 1);
        assert_eq!(stats.devices_out, 1);
        // Recovery is gated: the returning device sits out probation
        // before it can take traffic again.
        daemon.recover_device(0);
        assert!(
            matches!(daemon.device_health(0), HealthState::Probation { .. }),
            "a recovered device is on probation, not immediately healthy"
        );
        client.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn recorded_daemon_run_replays_identically() {
        let daemon = SlateDaemon::start_with_options(
            DeviceConfig::tiny(4),
            1 << 22,
            DaemonOptions {
                record_arbiter: true,
                ..Default::default()
            },
        );
        let client = SlateClient::new(daemon.connect("recorded").unwrap());
        let n = 2_000usize;
        let p = client.malloc((n * 4) as u64).unwrap();
        client.upload_f32(p, &vec![1.0f32; n]).unwrap();
        for _ in 0..2 {
            client
                .launch_with(vec![p], 10, None, double_factory(n))
                .unwrap();
        }
        client.synchronize().unwrap();
        client.disconnect().unwrap();
        daemon.join();
        assert_eq!(daemon.metrics().lock_recoveries, 0, "healthy run");
        let log = daemon.arbiter_log().expect("recording was enabled");
        assert!(
            log.batches.iter().any(|b| b
                .commands
                .iter()
                .any(|c| matches!(c, Command::Dispatch { .. }))),
            "the log must contain real dispatches"
        );
        crate::arbiter::replay::verify(&log).expect("daemon log replays identically");
    }
}
