//! Fault-tolerance integration: the daemon must survive misbehaving
//! clients. Covered here: session reaping after a client vanishes without
//! `Disconnect`, watchdog eviction of a hung kernel while its co-runner
//! keeps executing, graceful shutdown with drain, and the combined
//! crash-plus-hang recovery scenario.

use slate_core::api::{connect_with_retry, RetryPolicy, SlateClient};
use slate_core::daemon::{DaemonOptions, SlateDaemon};
use slate_core::error::SlateError;
use slate_gpu_sim::buffer::GpuBuffer;
use slate_gpu_sim::device::DeviceConfig;
use slate_gpu_sim::fault::FaultPlan;
use slate_gpu_sim::perf::KernelPerf;
use slate_kernels::grid::{BlockCoord, GridDim};
use slate_kernels::kernel::GpuKernel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Adds `delta` to every element, with a configurable performance profile
/// (to steer the arbiter's classification).
struct AddKernel {
    n: usize,
    delta: f32,
    perf: KernelPerf,
    buf: Arc<GpuBuffer>,
}

impl GpuKernel for AddKernel {
    fn name(&self) -> &str {
        &self.perf.name
    }
    fn grid(&self) -> GridDim {
        GridDim::d1((self.n as u32).div_ceil(64).max(1))
    }
    fn perf(&self) -> KernelPerf {
        self.perf.clone()
    }
    fn run_block(&self, b: BlockCoord) {
        let lo = b.x as usize * 64;
        for i in lo..(lo + 64).min(self.n) {
            self.buf.store_f32(i, self.buf.load_f32(i) + self.delta);
        }
    }
}

/// Compute-light profile (classifies L_C — a willing co-runner).
fn lc_perf(name: &str) -> KernelPerf {
    let mut p = KernelPerf::synthetic(name, 2_000.0, 0.0);
    p.mem_request_bytes_per_block = 1_000.0;
    p.dram_bytes_inorder = 1_000.0;
    p.dram_bytes_scattered = 1_000.0;
    p.max_concurrent_blocks = Some(32);
    p
}

/// Memory-heavy profile (classifies H_M — pairs with L_C).
fn hm_perf(name: &str) -> KernelPerf {
    let mut p = KernelPerf::synthetic(name, 300.0, 0.0);
    p.mem_request_bytes_per_block = 40_000.0;
    p.dram_bytes_inorder = 33_000.0;
    p.dram_bytes_scattered = 34_000.0;
    p
}

fn launch_add(
    client: &SlateClient,
    ptr: slate_core::channel::SlatePtr,
    n: usize,
    delta: f32,
    perf: KernelPerf,
) {
    client
        .launch_with(vec![ptr], 5, None, move |bufs| {
            Arc::new(AddKernel {
                n,
                delta,
                perf,
                buf: bufs[0].clone(),
            }) as Arc<dyn GpuKernel>
        })
        .unwrap();
}

/// Polls `cond` for up to five seconds; panics with `what` on timeout.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn vanished_client_is_reaped_and_corunner_finishes() {
    let daemon = SlateDaemon::start(DeviceConfig::tiny(8), 1 << 24);
    let n = 4_000usize;

    // Client A: leaks two allocations and queues work, then its process
    // "dies" — the client struct is dropped without Disconnect.
    let a = SlateClient::new(daemon.connect("crasher").unwrap());
    let pa = a.malloc((n * 4) as u64).unwrap();
    let _leak = a.malloc(1 << 16).unwrap();
    a.upload_f32(pa, &vec![0.0f32; n]).unwrap();
    launch_add(&a, pa, n, 1.0, hm_perf("doomed-hm"));
    drop(a);

    // Client B keeps running through the crash.
    let b = SlateClient::new(daemon.connect("survivor").unwrap());
    let pb = b.malloc((n * 4) as u64).unwrap();
    b.upload_f32(pb, &vec![0.0f32; n]).unwrap();
    for _ in 0..4 {
        launch_add(&b, pb, n, 1.0, lc_perf("survivor-lc"));
    }
    b.synchronize().unwrap();
    assert_eq!(b.download_f32(pb, n).unwrap(), vec![4.0f32; n]);

    // The daemon noticed the vanished sender: session reaped, both leaked
    // allocations freed, SM residency released.
    wait_for("session reap", || daemon.reaped_sessions() == 1);
    wait_for("allocation reclaim", || daemon.live_allocations() == 1);
    assert_eq!(daemon.arbiter_residents(), 0);

    b.free(pb).unwrap();
    b.disconnect().unwrap();
    daemon.join();
    assert_eq!(daemon.live_allocations(), 0);
}

#[test]
fn reap_races_queued_lane_launches_without_leaking() {
    // The client vanishes while several launches are still queued on a
    // stream lane. The reap must drain the lane (completing every
    // admitted launch so the admission counters balance), free the
    // session's allocations, release arbiter residency, and leave the
    // co-runner untouched.
    let daemon = SlateDaemon::start(DeviceConfig::tiny(8), 1 << 24);
    let n = 4_000usize;

    let a = SlateClient::new(daemon.connect("vanishes-mid-queue").unwrap());
    let pa = a.malloc((n * 4) as u64).unwrap();
    a.upload_f32(pa, &vec![0.0f32; n]).unwrap();
    for _ in 0..4 {
        let perf = hm_perf("queued-hm");
        a.launch_on_stream(1, vec![pa], 5, move |bufs| {
            Arc::new(AddKernel {
                n,
                delta: 1.0,
                perf,
                buf: bufs[0].clone(),
            }) as Arc<dyn GpuKernel>
        })
        .unwrap();
    }
    // Channel severed with the lane mid-burst: the race under test.
    drop(a);

    // The co-runner is served correctly throughout the reap.
    let b = SlateClient::new(daemon.connect("bystander").unwrap());
    let pb = b.malloc((n * 4) as u64).unwrap();
    b.upload_f32(pb, &vec![0.0f32; n]).unwrap();
    for _ in 0..3 {
        launch_add(&b, pb, n, 2.0, lc_perf("bystander-lc"));
    }
    b.synchronize().unwrap();
    assert_eq!(b.download_f32(pb, n).unwrap(), vec![6.0f32; n]);

    wait_for("session reap", || daemon.reaped_sessions() == 1);
    wait_for("allocation reclaim", || daemon.live_allocations() == 1);
    // The lane drained every queued launch before the reap finished:
    // nothing left pending, and every admission was completed.
    wait_for("queue drain", || daemon.queue_stats().depth == 0);
    let m = daemon.metrics();
    assert_eq!(
        m.queue.admitted,
        m.admission.launches_completed + m.admission.launches_failed,
        "{m:?}"
    );
    assert_eq!(m.queue.admitted, 7, "4 queued + 3 co-runner launches");
    assert_eq!(m.arbiter_residents, 0);

    b.free(pb).unwrap();
    b.disconnect().unwrap();
    daemon.join();
    assert_eq!(daemon.live_allocations(), 0);
    assert_eq!(daemon.hyperq_lanes(), 0);
}

#[test]
fn watchdog_evicts_hung_kernel_while_corunner_completes() {
    // The first launch of "hm-hang" never returns from its blocks; the
    // watchdog must evict it via the retreat flag without disturbing the
    // co-running client.
    let daemon = SlateDaemon::start_with_options(
        DeviceConfig::tiny(8),
        1 << 24,
        DaemonOptions {
            fault_plan: FaultPlan::new().hang_kernel("hm-hang", 1),
            ..Default::default()
        },
    );
    let n = 4_000usize;

    let hung = SlateClient::new(daemon.connect("hangs").unwrap());
    let ph = hung.malloc((n * 4) as u64).unwrap();
    hung.upload_f32(ph, &vec![0.0f32; n]).unwrap();
    let perf = hm_perf("hm-hang");
    hung.launch_with_deadline(vec![ph], 5, 60, move |bufs| {
        Arc::new(AddKernel {
            n,
            delta: 1.0,
            perf,
            buf: bufs[0].clone(),
        }) as Arc<dyn GpuKernel>
    })
    .unwrap();

    // The co-runner launches while the hung kernel occupies its partition.
    let ok = SlateClient::new(daemon.connect("co-runner").unwrap());
    let po = ok.malloc((n * 4) as u64).unwrap();
    ok.upload_f32(po, &vec![0.0f32; n]).unwrap();
    for _ in 0..3 {
        launch_add(&ok, po, n, 2.0, lc_perf("steady-lc"));
    }
    ok.synchronize().unwrap();
    assert_eq!(ok.download_f32(po, n).unwrap(), vec![6.0f32; n]);

    // The hung client's sync surfaces the structured timeout.
    match hung.synchronize() {
        Err(SlateError::Timeout { elapsed_ms }) => assert!(elapsed_ms >= 40, "{elapsed_ms}"),
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert_eq!(daemon.watchdog_evictions(), 1);
    assert_eq!(daemon.arbiter_residents(), 0, "evicted SM range reclaimed");

    // The hang rule fired once; the same session relaunches successfully.
    let perf = hm_perf("hm-hang");
    hung.launch_with_deadline(vec![ph], 5, 5_000, move |bufs| {
        Arc::new(AddKernel {
            n,
            delta: 1.0,
            perf,
            buf: bufs[0].clone(),
        }) as Arc<dyn GpuKernel>
    })
    .unwrap();
    hung.synchronize().unwrap();
    assert_eq!(hung.download_f32(ph, n).unwrap(), vec![1.0f32; n]);

    hung.disconnect().unwrap();
    ok.free(po).unwrap();
    ok.disconnect().unwrap();
    daemon.join();
}

#[test]
fn graceful_shutdown_drains_sessions_and_refuses_newcomers() {
    let daemon = SlateDaemon::start(DeviceConfig::tiny(4), 1 << 22);
    let n = 2_000usize;
    let client = SlateClient::new(daemon.connect("tenant").unwrap());
    let p = client.malloc((n * 4) as u64).unwrap();
    client.upload_f32(p, &vec![0.0f32; n]).unwrap();

    let d = daemon.clone();
    let drain = std::thread::spawn(move || d.shutdown(Duration::from_secs(5)));
    wait_for("shutdown flag", || daemon.is_shutting_down());

    // Newcomers are refused — even with a client-side retry policy, since
    // ShuttingDown stays transient only until the policy's attempts run out.
    let refused = connect_with_retry(&daemon, "late", RetryPolicy::with_attempts(2));
    assert!(matches!(refused, Err(SlateError::ShuttingDown)));

    // The in-flight session still gets full service (serialized solo).
    launch_add(&client, p, n, 3.0, lc_perf("drain-lc"));
    client.synchronize().unwrap();
    assert_eq!(client.download_f32(p, n).unwrap(), vec![3.0f32; n]);
    client.free(p).unwrap();
    client.disconnect().unwrap();

    assert!(drain.join().unwrap(), "drain completed before the deadline");
    daemon.join();
    assert_eq!(daemon.live_allocations(), 0);
}

/// The acceptance scenario: with two co-running clients, killing one
/// client's channel and hanging the other's kernel leaves the daemon
/// serving a fresh third client correctly, with no leaked device memory.
#[test]
fn daemon_recovers_from_crash_and_hang_and_serves_fresh_client() {
    let daemon = SlateDaemon::start_with_options(
        DeviceConfig::tiny(8),
        1 << 24,
        DaemonOptions {
            fault_plan: FaultPlan::new().hang_kernel("hm-hang", 1),
            ..Default::default()
        },
    );
    let n = 4_000usize;

    // Client A (compute-light) and client B (memory-heavy) co-run.
    let a = SlateClient::new(daemon.connect("a-crasher").unwrap());
    let pa = a.malloc((n * 4) as u64).unwrap();
    a.upload_f32(pa, &vec![0.0f32; n]).unwrap();
    launch_add(&a, pa, n, 1.0, lc_perf("a-lc"));

    let b = SlateClient::new(daemon.connect("b-hangs").unwrap());
    let pb = b.malloc((n * 4) as u64).unwrap();
    b.upload_f32(pb, &vec![0.0f32; n]).unwrap();
    let perf = hm_perf("hm-hang");
    b.launch_with_deadline(vec![pb], 5, 60, move |bufs| {
        Arc::new(AddKernel {
            n,
            delta: 1.0,
            perf,
            buf: bufs[0].clone(),
        }) as Arc<dyn GpuKernel>
    })
    .unwrap();

    // Fault 1: A's process dies — channel severed without Disconnect.
    drop(a);
    // Fault 2: B's kernel hangs; the watchdog evicts it.
    match b.synchronize() {
        Err(SlateError::Timeout { .. }) => {}
        other => panic!("expected Timeout, got {other:?}"),
    }

    wait_for("crashed session reap", || daemon.reaped_sessions() == 1);
    assert_eq!(daemon.watchdog_evictions(), 1);
    wait_for("A's allocation reclaim", || daemon.live_allocations() == 1);

    // A fresh client gets correct service after both faults.
    let c = SlateClient::new(daemon.connect("c-fresh").unwrap());
    let pc = c.malloc((n * 4) as u64).unwrap();
    c.upload_f32(pc, &(0..n).map(|i| i as f32).collect::<Vec<_>>())
        .unwrap();
    launch_add(&c, pc, n, 5.0, lc_perf("c-lc"));
    c.synchronize().unwrap();
    let out = c.download_f32(pc, n).unwrap();
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, i as f32 + 5.0, "element {i}");
    }
    c.free(pc).unwrap();
    c.disconnect().unwrap();

    // B leaves too; nothing leaks.
    b.free(pb).unwrap();
    b.disconnect().unwrap();
    daemon.join();
    assert_eq!(daemon.live_allocations(), 0);
    assert_eq!(daemon.arbiter_residents(), 0);
}
