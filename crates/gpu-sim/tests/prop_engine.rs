//! Property tests for the simulator substrate: conservation laws of the
//! bandwidth allocator, occupancy bounds, cache-model bounds, and engine
//! invariants (closed-form agreement, resize conservation, metric
//! proportionality) over arbitrary kernel profiles.

use proptest::prelude::*;
use slate_gpu_sim::cache;
use slate_gpu_sim::device::{DeviceConfig, SmRange};
use slate_gpu_sim::engine::{Engine, Event, SliceSpec};
use slate_gpu_sim::membw::{allocate, BwDemand};
use slate_gpu_sim::model;
use slate_gpu_sim::occupancy;
use slate_gpu_sim::perf::{BlockOrder, ExecMode, KernelPerf};

fn arb_perf() -> impl Strategy<Value = KernelPerf> {
    (
        64u32..=1024,        // threads per block (multiple of 32 below)
        16u32..=64,          // regs per thread
        0u32..=32 * 1024,    // smem
        100.0..100_000.0f64, // compute cycles
        0.0..200_000.0f64,   // dram bytes in-order
        1.0..3.0f64,         // scattered multiplier
    )
        .prop_map(|(threads, regs, smem, cycles, dram, mult)| {
            let mut p = KernelPerf::synthetic("prop", cycles, dram * mult);
            p.threads_per_block = (threads / 32).max(1) * 32;
            p.regs_per_thread = regs;
            p.smem_per_block = smem;
            p.dram_bytes_inorder = dram;
            p.dram_bytes_scattered = dram * mult;
            p.mem_request_bytes_per_block = dram * mult;
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The allocator conserves capacity and never over-grants a demand.
    #[test]
    fn allocator_conserves(demands in prop::collection::vec(0.0..1e12f64, 0..12),
                           capacity in 0.0..1e12f64) {
        let ds: Vec<BwDemand> = demands.iter().map(|&d| BwDemand { demand: d }).collect();
        let allocs = allocate(capacity, &ds);
        prop_assert_eq!(allocs.len(), ds.len());
        let total: f64 = allocs.iter().sum();
        prop_assert!(total <= capacity.max(demands.iter().sum()) * (1.0 + 1e-9));
        let demand_total: f64 = demands.iter().sum();
        if demand_total > 0.0 {
            prop_assert!(total <= capacity * (1.0 + 1e-9) || demand_total <= capacity);
        }
        for (a, d) in allocs.iter().zip(demands.iter()) {
            prop_assert!(*a <= d * (1.0 + 1e-9) + 1e-12);
            prop_assert!(*a >= 0.0);
        }
    }

    /// Occupancy never exceeds any hardware limit.
    #[test]
    fn occupancy_respects_limits(perf in arb_perf()) {
        let d = DeviceConfig::titan_xp();
        let blocks = occupancy::blocks_per_sm(&d, &perf);
        prop_assert!(blocks <= d.max_blocks_per_sm);
        prop_assert!(blocks * perf.threads_per_block <= d.max_threads_per_sm);
        if blocks > 0 {
            prop_assert!(blocks * perf.regs_per_thread * perf.threads_per_block
                <= d.regs_per_sm + 256 * blocks);
            prop_assert!(blocks as u64 * perf.smem_per_block as u64
                <= d.smem_per_sm as u64 + 256 * blocks as u64);
        }
    }

    /// Effective DRAM bytes always lie between the in-order and scattered
    /// figures, monotonically in pressure.
    #[test]
    fn cache_model_bounded(perf in arb_perf(), p1 in 0.0..4.0f64, p2 in 0.0..4.0f64) {
        for order in [BlockOrder::InOrder, BlockOrder::Scattered] {
            let e1 = cache::effective_dram_bytes(&perf, order, p1);
            prop_assert!(e1 >= perf.dram_bytes_inorder - 1e-9);
            prop_assert!(e1 <= perf.dram_bytes_scattered + 1e-9);
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let el = cache::effective_dram_bytes(&perf, order, lo);
            let eh = cache::effective_dram_bytes(&perf, order, hi);
            prop_assert!(el <= eh + 1e-9, "monotone in pressure");
        }
    }

    /// A solo engine run agrees with the closed-form rate model up to the
    /// tail-imbalance correction.
    #[test]
    fn engine_matches_model(perf in arb_perf(), blocks in 10_000u64..2_000_000) {
        let cfg = DeviceConfig::titan_xp();
        if occupancy::blocks_per_sm(&cfg, &perf) == 0 {
            return Ok(()); // unlaunchable
        }
        let mut e = Engine::new(cfg.clone());
        let id = e.add_slice(SliceSpec {
            perf: perf.clone(),
            sm_range: SmRange::all(30),
            blocks,
            mode: ExecMode::Hardware,
            extra_lead_s: 0.0,
            batch: 1,
            tag: 0,
        }).unwrap();
        let (t, _) = e.run_until(|ev| matches!(ev, Event::SliceDrained(_))).unwrap();
        let rep = e.remove_slice(id);
        prop_assert!(rep.drained);
        prop_assert_eq!(rep.blocks_done, blocks);
        let est = model::estimate_duration(&cfg, &perf, blocks, 30, ExecMode::Hardware);
        // The engine only adds the tail-imbalance factor (< 4x, usually ~1).
        prop_assert!(t >= est * 0.999, "engine faster than model: {} < {}", t, est);
        prop_assert!(t <= est * 4.001, "engine slower than imbalance bound");
    }

    /// Removing a slice mid-flight and relaunching the remainder conserves
    /// blocks exactly, for any split point and any SM ranges.
    #[test]
    fn resize_conserves_blocks(perf in arb_perf(),
                               blocks in 10_000u64..500_000,
                               cut in 0.05..0.95f64,
                               lo in 0u32..29,
                               task in 1u32..40) {
        let cfg = DeviceConfig::titan_xp();
        if occupancy::blocks_per_sm(&cfg, &perf) == 0 {
            return Ok(());
        }
        let mut e = Engine::new(cfg.clone());
        let mode = ExecMode::SlateWorkers { task_size: task };
        let id = e.add_slice(SliceSpec {
            perf: perf.clone(),
            sm_range: SmRange::all(30),
            blocks,
            mode,
            extra_lead_s: 0.0,
            batch: 1,
            tag: 0,
        }).unwrap();
        // Cut somewhere mid-run.
        let est = model::estimate_duration(&cfg, &perf, blocks, 30, mode);
        let timer = e.set_timer(est * cut);
        loop {
            let (_, ev) = e.step().unwrap();
            match ev {
                Event::Timer(t) if t == timer => break,
                Event::SliceDrained(_) => break, // drained before the cut
                _ => {}
            }
        }
        let rep1 = e.remove_slice(id);
        let remaining = blocks - rep1.blocks_done;
        let mut total = rep1.blocks_done;
        if remaining > 0 {
            let id2 = e.add_slice(SliceSpec {
                perf: perf.clone(),
                sm_range: SmRange::new(lo, 29),
                blocks: remaining,
                mode,
                extra_lead_s: 0.0,
                batch: 1,
                tag: 1,
            }).unwrap();
            e.run_until(|ev| matches!(ev, Event::SliceDrained(_))).unwrap();
            let rep2 = e.remove_slice(id2);
            prop_assert!(rep2.drained);
            total += rep2.blocks_done;
        }
        prop_assert_eq!(total, blocks);
    }

    /// Accumulated metrics are exactly proportional to completed blocks.
    #[test]
    fn metrics_proportional(perf in arb_perf(), blocks in 1_000u64..200_000) {
        let cfg = DeviceConfig::titan_xp();
        if occupancy::blocks_per_sm(&cfg, &perf) == 0 {
            return Ok(());
        }
        let mut e = Engine::new(cfg);
        let id = e.add_slice(SliceSpec {
            perf: perf.clone(),
            sm_range: SmRange::all(30),
            blocks,
            mode: ExecMode::Hardware,
            extra_lead_s: 0.0,
            batch: 1,
            tag: 0,
        }).unwrap();
        e.run_until(|ev| matches!(ev, Event::SliceDrained(_))).unwrap();
        let rep = e.remove_slice(id);
        let b = blocks as f64;
        let close = |x: f64, y: f64| (x - y).abs() <= 1e-6 * y.abs().max(1.0);
        prop_assert!(close(rep.flops, b * perf.flops_per_block));
        prop_assert!(close(rep.insts, b * perf.insts_per_block));
        prop_assert!(close(rep.request_bytes, b * perf.mem_request_bytes_per_block));
        prop_assert!(rep.stall_s <= rep.active_s * (1.0 + 1e-9));
    }

    /// The steady-rate model is monotone in SM count.
    #[test]
    fn rate_monotone_in_sms(perf in arb_perf()) {
        let cfg = DeviceConfig::titan_xp();
        let mut last = 0.0;
        for sms in 1..=30 {
            let r = model::steady_rate(&cfg, &perf, sms, ExecMode::Hardware);
            prop_assert!(r >= last - 1e-9, "rate dropped at {sms} SMs");
            last = r;
        }
    }
}
