//! The event and command vocabulary of the arbitration core.
//!
//! Frontends translate whatever happens in their world — an engine event in
//! the simulator, a wire request or a watchdog tick in the daemon — into
//! [`Event`]s with logical timestamps, and translate the returned
//! [`Command`]s back into launches, retreats and wire errors. The
//! vocabulary is the *entire* interface: the core never reads a clock,
//! takes a lock or touches a device, which is what makes its decisions
//! replayable (see [`super::replay`]).

use crate::classify::WorkloadClass;
use serde::{Deserialize, Serialize};
use slate_gpu_sim::device::SmRange;
use slate_kernels::workload::SloClass;
use std::fmt;

/// Logical time in microseconds. The simulator derives it from engine
/// time, the daemon from a monotonic epoch; the core only compares and
/// subtracts ticks, never interprets them as wall-clock.
pub type Tick = u64;

/// An input to the arbitration core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A client asked to connect. Subject to the `max_sessions` bound.
    SessionOpened {
        /// Frontend-assigned session id.
        session: u64,
    },
    /// An admitted session disconnected cleanly.
    SessionClosed {
        /// The session that disconnected.
        session: u64,
    },
    /// An admitted session's client vanished (channel severed); the core
    /// answers with [`Command::Reap`] after cleaning up its leases.
    SessionSevered {
        /// The session whose client vanished.
        session: u64,
    },
    /// A session asked to launch a kernel. Subject to admission control:
    /// deadline feasibility, the per-session bound and the global bound,
    /// in that order.
    LaunchRequested {
        /// The requesting session.
        session: u64,
        /// Frontend-assigned launch queue identity (one per stream); the
        /// later [`Event::KernelReady`] / [`Event::KernelFinished`] for
        /// this launch carry the same lease.
        lease: u64,
        /// Estimated solo runtime in milliseconds (`None` when the kernel
        /// is unprofiled; unprofiled launches are admitted optimistically).
        est_ms: Option<u64>,
        /// The launch's completion deadline, if it carries one.
        deadline_ms: Option<u64>,
    },
    /// An admitted kernel is staged and ready for SM assignment. The core
    /// will answer — now or in a later batch — with [`Command::Dispatch`].
    KernelReady {
        /// The owning session.
        session: u64,
        /// Launch queue identity (see [`Event::LaunchRequested`]).
        lease: u64,
        /// The kernel's workload class (paper Table I row/column).
        class: WorkloadClass,
        /// SMs the kernel can productively use (its saturation point).
        sm_demand: u32,
        /// `true` pins the kernel to solo execution: it never co-runs.
        pinned_solo: bool,
        /// Effective watchdog deadline; armed when the kernel dispatches.
        deadline_ms: Option<u64>,
    },
    /// A dispatched kernel left the device (drained, faulted or evicted).
    KernelFinished {
        /// The finished launch's lease.
        lease: u64,
        /// `false` when the kernel faulted or was evicted.
        ok: bool,
    },
    /// A session asked for device memory; the core applies the
    /// memory-pressure watermark (the pool itself still enforces hard
    /// capacity).
    MallocRequested {
        /// The requesting session.
        session: u64,
        /// Bytes currently allocated from the pool.
        used: u64,
        /// Total pool capacity in bytes.
        capacity: u64,
        /// Bytes requested.
        bytes: u64,
    },
    /// Time passed. Carries no payload — the batch timestamp advances the
    /// core's clock — but guarantees a fresh scheduling pass, which is how
    /// watchdog deadlines fire and starvation bounds are noticed.
    DeadlineTick,
    /// The frontend began shutting down: no new co-run pairings; resident
    /// and queued work drains.
    DrainBegan,
    /// The named device went down. `hard` distinguishes an outright loss
    /// (off the bus) from a degradation signal (stalling, flapping). The
    /// placement layer turns this into a health transition and, when the
    /// device leaves service, an evacuation; to a single core it is a
    /// scheduling nudge like [`Event::DeadlineTick`].
    DeviceDown {
        /// Placement-layer device index.
        device: u64,
        /// `true` for a hard loss, `false` for a degradation.
        hard: bool,
    },
    /// The named device came back. The placement layer starts its seeded
    /// probation window before re-admitting it as a routing target.
    DeviceUp {
        /// Placement-layer device index.
        device: u64,
    },
    /// The named session declared its service-level objective class.
    /// Frontends feed this immediately before the session's
    /// [`Event::SessionOpened`] (and again on recovery replay); sessions
    /// that never declare default to [`SloClass::BestEffort`], so
    /// best-effort traffic emits no extra events.
    SloArrival {
        /// The declaring session.
        session: u64,
        /// Its SLO class.
        class: SloClass,
    },
}

/// Why a request was shed with [`Command::RejectOverloaded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectScope {
    /// `max_sessions` bound hit: the connecting session was refused.
    Session,
    /// Per-session or global pending-launch bound hit (drop-newest).
    Launch,
    /// The estimated queue wait already exceeds the launch's deadline.
    Deadline,
    /// The allocation would cross the memory-pressure watermark.
    Malloc,
}

/// An output of the arbitration core. Commands are instructions to the
/// frontend; the core assumes they are carried out (it updates its own
/// state as if they were).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Command {
    /// Start the ready kernel on `range`.
    Dispatch {
        /// The lease from the kernel's [`Event::KernelReady`].
        lease: u64,
        /// The SM partition granted to it.
        range: SmRange,
    },
    /// Move a *resident* kernel to `range` (retreat + relaunch): shrink to
    /// make room for a co-runner, or regrow when one departs.
    Resize {
        /// The resident kernel's lease.
        lease: u64,
        /// Its new SM partition.
        range: SmRange,
    },
    /// Shed the triggering request; the client should retry after the
    /// hinted backoff.
    RejectOverloaded {
        /// The session whose request was shed.
        session: u64,
        /// The shed launch's lease ([`RejectScope::Launch`] /
        /// [`RejectScope::Deadline`]); `None` for session- and
        /// malloc-scoped sheds.
        lease: Option<u64>,
        /// What was shed.
        scope: RejectScope,
        /// Suggested client backoff, always ≥ 1 ms.
        retry_after_ms: u64,
    },
    /// The named waiter starved past the bound and is being dispatched
    /// solo ahead of any co-run pairing (informational; a
    /// [`Command::Dispatch`] for the same lease follows).
    PromoteStarved {
        /// The promoted waiter's lease.
        lease: u64,
    },
    /// The resident kernel blew its deadline: retreat it off the device.
    /// The frontend feeds [`Event::KernelFinished`] `{ok: false}` once the
    /// eviction lands.
    Evict {
        /// The overdue kernel's lease.
        lease: u64,
    },
    /// A severed session's state is gone from the core; the frontend
    /// should free its allocations and retire its lanes.
    Reap {
        /// The reaped session.
        session: u64,
    },
    /// A latency-critical arrival is displacing the named best-effort
    /// resident (informational, like [`Command::PromoteStarved`]; the
    /// [`Command::Resize`] retreating the resident and the
    /// [`Command::Dispatch`] for the arrival follow in the same batch).
    Preempt {
        /// The displaced best-effort resident's lease.
        lease: u64,
    },
}

fn opt(v: &Option<u64>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "-".to_string(),
    }
}

impl fmt::Display for Event {
    /// Stable one-line rendering used by replay transcripts; changing it
    /// invalidates checked-in goldens.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::SessionOpened { session } => write!(f, "session-opened s{session}"),
            Event::SessionClosed { session } => write!(f, "session-closed s{session}"),
            Event::SessionSevered { session } => write!(f, "session-severed s{session}"),
            Event::LaunchRequested {
                session,
                lease,
                est_ms,
                deadline_ms,
            } => write!(
                f,
                "launch-requested s{session} l{lease} est={} deadline={}",
                opt(est_ms),
                opt(deadline_ms)
            ),
            Event::KernelReady {
                session,
                lease,
                class,
                sm_demand,
                pinned_solo,
                deadline_ms,
            } => {
                write!(
                    f,
                    "kernel-ready s{session} l{lease} {class:?} demand={sm_demand} pinned={pinned_solo} deadline={}",
                    opt(deadline_ms)
                )
            }
            Event::KernelFinished { lease, ok } => {
                write!(f, "kernel-finished l{lease} ok={ok}")
            }
            Event::MallocRequested {
                session,
                used,
                capacity,
                bytes,
            } => write!(
                f,
                "malloc-requested s{session} used={used}/{capacity} bytes={bytes}"
            ),
            Event::DeadlineTick => f.write_str("deadline-tick"),
            Event::DrainBegan => f.write_str("drain-began"),
            Event::DeviceDown { device, hard } => {
                write!(f, "device-down d{device} hard={hard}")
            }
            Event::DeviceUp { device } => write!(f, "device-up d{device}"),
            Event::SloArrival { session, class } => {
                write!(f, "slo-arrival s{session} class={class}")
            }
        }
    }
}

impl fmt::Display for Command {
    /// Stable one-line rendering used by replay transcripts; changing it
    /// invalidates checked-in goldens.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Dispatch { lease, range } => {
                write!(f, "dispatch l{lease} sm[{}..{}]", range.lo, range.hi)
            }
            Command::Resize { lease, range } => {
                write!(f, "resize l{lease} sm[{}..{}]", range.lo, range.hi)
            }
            Command::RejectOverloaded {
                session,
                lease,
                scope,
                retry_after_ms,
            } => write!(
                f,
                "reject s{session} l{} scope={scope:?} retry={retry_after_ms}ms",
                opt(lease)
            ),
            Command::PromoteStarved { lease } => write!(f, "promote-starved l{lease}"),
            Command::Evict { lease } => write!(f, "evict l{lease}"),
            Command::Reap { session } => write!(f, "reap s{session}"),
            Command::Preempt { lease } => write!(f, "preempt l{lease}"),
        }
    }
}
