//! Offline config autotuning over recorded logs.
//!
//! Exact replay makes configuration search embarrassingly parallel: one
//! recorded [`EventLog`] replayed under N [`ArbiterConfig`] variants via
//! [`replay_under`] yields N command streams over *identical* inputs, so
//! scoring them against each other is a controlled experiment — no
//! simulation noise, no re-run variance, and a re-run of the same grid
//! over the same log produces byte-identical reports. Scoring uses only
//! command-derived metrics ([`ReplayMetrics`]); see the
//! [`metrics`](super::metrics) module docs for why event-derived
//! latencies are off-limits in counterfactual comparisons.
//!
//! [`replay_under`]: crate::arbiter::replay::replay_under

use super::metrics::{replay_metrics, routed_metrics, ReplayMetrics};
use crate::arbiter::replay::{replay_under, EventLog};
use crate::arbiter::ArbiterConfig;
use crate::placement::replay::{replay_under as replay_placement_under, PlacementLog};
use crate::placement::{PlacementConfig, RebalanceConfig};
use std::fmt::Write as _;
use std::sync::Mutex;

/// One candidate configuration in a tuning grid.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneVariant {
    /// Human-readable variant name (shown in the report tables).
    pub name: String,
    /// The configuration to replay under.
    pub config: ArbiterConfig,
}

/// One candidate placement configuration (multi-device logs).
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementVariant {
    /// Human-readable variant name.
    pub name: String,
    /// The configuration to replay under.
    pub config: PlacementConfig,
}

fn opt_us(v: Option<u64>) -> String {
    match v {
        Some(x) => format!("{x}us"),
        None => "off".into(),
    }
}

/// Compact one-line rendering of the knobs a variant moved.
pub fn config_summary(c: &ArbiterConfig) -> String {
    let mut s = format!(
        "corun={} resize={} starve={} preempt={}",
        u8::from(c.enable_corun),
        u8::from(c.enable_resize),
        opt_us(c.starvation_bound_us),
        opt_us(c.preempt_bound_us),
    );
    if let Some(g) = c.limits.max_pending_global {
        let _ = write!(s, " pend_global={g}");
    }
    if let Some(p) = c.limits.max_pending_per_session {
        let _ = write!(s, " pend_session={p}");
    }
    if let Some(m) = c.limits.max_sessions {
        let _ = write!(s, " sessions={m}");
    }
    s
}

fn rebalance_summary(r: &Option<RebalanceConfig>) -> String {
    match r {
        Some(r) => format!(
            " rebal=hi{}ms/lo{}ms/cd{}us",
            r.high_ms, r.low_ms, r.cooldown_us
        ),
        None => " rebal=off".into(),
    }
}

/// The built-in one-factor grid around `base` (the log's recorded
/// configuration): the recorded baseline first, then each policy knob
/// moved on its own — preemption bound off/5 ms/10 ms/50 ms, starvation
/// bound 50 ms/200 ms, co-running off, resizing off, and a tight global
/// admission bound. Ten variants, satisfying the ≥ 8 the tuner smoke
/// grid requires.
pub fn default_grid(base: &ArbiterConfig) -> Vec<TuneVariant> {
    let v = |name: &str, f: &dyn Fn(&mut ArbiterConfig)| {
        let mut config = base.clone();
        f(&mut config);
        TuneVariant {
            name: name.to_string(),
            config,
        }
    };
    vec![
        TuneVariant {
            name: "recorded".into(),
            config: base.clone(),
        },
        v("preempt=off", &|c| c.preempt_bound_us = None),
        v("preempt=5ms", &|c| c.preempt_bound_us = Some(5_000)),
        v("preempt=10ms", &|c| c.preempt_bound_us = Some(10_000)),
        v("preempt=50ms", &|c| c.preempt_bound_us = Some(50_000)),
        v("starve=50ms", &|c| c.starvation_bound_us = Some(50_000)),
        v("starve=200ms", &|c| c.starvation_bound_us = Some(200_000)),
        v("corun=off", &|c| c.enable_corun = false),
        v("resize=off", &|c| c.enable_resize = false),
        v("pend_global=4", &|c| c.limits.max_pending_global = Some(4)),
    ]
}

/// The built-in placement grid: the arbiter one-factor variants under
/// the recorded rebalance settings, plus rebalance watermark moves
/// (off, half/double the high watermark, half the low watermark, a 4×
/// cooldown).
pub fn default_placement_grid(base: &PlacementConfig) -> Vec<PlacementVariant> {
    let mut out: Vec<PlacementVariant> = default_grid(&base.arbiter)
        .into_iter()
        .map(|v| {
            let mut config = base.clone();
            config.arbiter = v.config;
            PlacementVariant {
                name: v.name,
                config,
            }
        })
        .collect();
    let reb = base.rebalance.clone().unwrap_or_default();
    let r = |name: &str, rebalance: Option<RebalanceConfig>| {
        let mut config = base.clone();
        config.rebalance = rebalance;
        PlacementVariant {
            name: name.to_string(),
            config,
        }
    };
    out.push(r("rebal=off", None));
    let mut hi2 = reb.clone();
    hi2.high_ms *= 2;
    out.push(r("rebal_high*2", Some(hi2)));
    let mut hi_half = reb.clone();
    hi_half.high_ms = (hi_half.high_ms / 2).max(hi_half.low_ms).max(1);
    out.push(r("rebal_high/2", Some(hi_half)));
    let mut lo_half = reb.clone();
    lo_half.low_ms = (lo_half.low_ms / 2).max(1);
    out.push(r("rebal_low/2", Some(lo_half)));
    let mut cd4 = reb;
    cd4.cooldown_us *= 4;
    out.push(r("rebal_cooldown*4", Some(cd4)));
    out
}

/// Hard cap on grid size; a runaway cartesian spec is an input error,
/// not a reason to spin 10⁶ replays.
pub const MAX_GRID: usize = 256;

fn parse_bound(key: &str, v: &str) -> Result<Option<u64>, String> {
    if v == "none" || v == "off" {
        return Ok(None);
    }
    v.parse::<u64>()
        .map(Some)
        .map_err(|_| format!("grid: `{key}={v}`: expected an integer, `none` or `off`"))
}

fn parse_flag(key: &str, v: &str) -> Result<bool, String> {
    match v {
        "1" | "true" | "on" => Ok(true),
        "0" | "false" | "off" => Ok(false),
        _ => Err(format!("grid: `{key}={v}`: expected on/off/1/0/true/false")),
    }
}

/// Parses a cartesian grid spec of the form
/// `key=v1,v2;key2=v3,...` over `base` — every combination of the listed
/// values becomes a variant, with the recorded baseline prepended.
///
/// Keys: `preempt_bound_us`, `starvation_bound_us` (integer µs, `none`,
/// or `off`), `enable_corun`, `enable_resize` (`on`/`off`),
/// `max_pending_global`, `max_pending_per_session`, `max_sessions`
/// (integer, `none`, or `off`). At most [`MAX_GRID`] variants.
pub fn parse_grid(spec: &str, base: &ArbiterConfig) -> Result<Vec<TuneVariant>, String> {
    let mut variants = vec![TuneVariant {
        name: "recorded".into(),
        config: base.clone(),
    }];
    for axis in spec.split(';').filter(|a| !a.trim().is_empty()) {
        let (key, values) = axis
            .split_once('=')
            .ok_or_else(|| format!("grid: axis `{axis}` is not `key=v1,v2,...`"))?;
        let key = key.trim();
        let values: Vec<&str> = values.split(',').map(str::trim).collect();
        if values.is_empty() {
            return Err(format!("grid: axis `{key}` has no values"));
        }
        let mut expanded = Vec::with_capacity(variants.len() * values.len());
        for variant in &variants {
            for v in &values {
                let mut config = variant.config.clone();
                match key {
                    "preempt_bound_us" => config.preempt_bound_us = parse_bound(key, v)?,
                    "starvation_bound_us" => config.starvation_bound_us = parse_bound(key, v)?,
                    "enable_corun" => config.enable_corun = parse_flag(key, v)?,
                    "enable_resize" => config.enable_resize = parse_flag(key, v)?,
                    "max_pending_global" => config.limits.max_pending_global = parse_bound(key, v)?,
                    "max_pending_per_session" => {
                        config.limits.max_pending_per_session = parse_bound(key, v)?
                    }
                    "max_sessions" => {
                        config.limits.max_sessions = parse_bound(key, v)?.map(|n| n as usize)
                    }
                    _ => return Err(format!("grid: unknown key `{key}`")),
                }
                let name = if variant.name == "recorded" {
                    format!("{key}={v}")
                } else {
                    format!("{} {key}={v}", variant.name)
                };
                expanded.push(TuneVariant { name, config });
                if expanded.len() > MAX_GRID {
                    return Err(format!("grid: more than {MAX_GRID} variants"));
                }
            }
        }
        // The recorded baseline always stays; axes expand around it.
        let mut next = vec![variants[0].clone()];
        next.extend(expanded);
        if next.len() > MAX_GRID {
            return Err(format!("grid: more than {MAX_GRID} variants"));
        }
        variants = next;
    }
    if variants.len() < 2 {
        return Err("grid: spec produced no variants beyond the baseline".into());
    }
    Ok(variants)
}

/// Lower-is-better lexicographic score of a variant: p99
/// latency-critical dispatch wait, then the ANTT proxy (in 1e-4 units),
/// then overall p99 wait. Ties beyond that resolve to the earlier
/// variant in the grid — the baseline wins exact ties, so a variant must
/// genuinely move a scored metric to displace it.
pub fn score(m: &ReplayMetrics) -> (u64, u64, u64) {
    (
        m.lc_wait.p99_us,
        (m.antt_proxy * 1e4).round() as u64,
        m.wait.p99_us,
    )
}

/// One scored variant in a [`TuneReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct TuneRow {
    /// Variant name.
    pub name: String,
    /// Compact rendering of the variant's configuration.
    pub config: String,
    /// Whether this is the log's recorded baseline configuration.
    pub baseline: bool,
    /// The command-derived metrics of its counterfactual replay.
    pub metrics: ReplayMetrics,
}

/// The ranked outcome of a tuning run. Construction is deterministic:
/// same log + same grid ⇒ identical rows ⇒ identical report bytes, no
/// matter how many threads replayed the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReport {
    /// Batches in the tuned log.
    pub batches: usize,
    /// Events in the tuned log.
    pub events: usize,
    /// Rows ranked best (index 0) to worst.
    pub rows: Vec<TuneRow>,
}

impl TuneReport {
    fn rank(batches: usize, events: usize, mut rows: Vec<TuneRow>) -> Self {
        // Stable sort: grid order breaks score ties, baseline first.
        rows.sort_by_key(|r| score(&r.metrics));
        TuneReport {
            batches,
            events,
            rows,
        }
    }

    /// The best-scoring row.
    pub fn best(&self) -> &TuneRow {
        &self.rows[0]
    }

    /// The recorded-baseline row.
    pub fn baseline(&self) -> &TuneRow {
        self.rows
            .iter()
            .find(|r| r.baseline)
            .unwrap_or_else(|| self.best())
    }

    /// Whether the best variant scores at least as well as the recorded
    /// baseline. The baseline is itself in the grid, so this can only be
    /// false if ranking is broken — the tuner smoke asserts it as a
    /// self-check.
    pub fn best_not_worse_than_baseline(&self) -> bool {
        score(&self.best().metrics) <= score(&self.baseline().metrics)
    }

    /// Deterministic JSON rendering (hand-emitted: fixed field order,
    /// fixed float precision).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"batches\":{},\"events\":{},\"variants\":{},\"best\":",
            self.batches,
            self.events,
            self.rows.len()
        );
        serde::ser_str(&mut out, &self.best().name);
        out.push_str(",\"rows\":[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{\"rank\":");
            let _ = write!(out, "{}", i + 1);
            out.push_str(",\"name\":");
            serde::ser_str(&mut out, &r.name);
            out.push_str(",\"config\":");
            serde::ser_str(&mut out, &r.config);
            let m = &r.metrics;
            let _ = write!(
                out,
                ",\"baseline\":{},\"lc_p99_wait_us\":{},\"p99_wait_us\":{},\
                 \"antt_proxy\":{:.4},\"preempt_p99_us\":{},\"preempt_max_us\":{},\
                 \"preemptions\":{},\"sheds\":{},\"evictions\":{},\"resizes\":{},\
                 \"promotions\":{},\"episodes\":{},\"undispatched\":{}}}",
                r.baseline,
                m.lc_wait.p99_us,
                m.wait.p99_us,
                m.antt_proxy,
                m.preempt.p99_us,
                m.preempt.max_us,
                m.preemptions,
                m.sheds,
                m.evictions,
                m.resizes,
                m.promotions,
                m.episodes,
                m.undispatched,
            );
        }
        out.push_str("\n]}\n");
        out
    }

    /// Deterministic markdown ranking table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "| Rank | Variant | Config | LC p99 wait (µs) | p99 wait (µs) | ANTT proxy | Preempt p99 (µs) | Sheds | Undispatched |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|");
        for (i, r) in self.rows.iter().enumerate() {
            let m = &r.metrics;
            let name = if r.baseline {
                format!("**{}**", r.name)
            } else {
                r.name.clone()
            };
            let _ = writeln!(
                out,
                "| {} | {} | `{}` | {} | {} | {:.4} | {} | {} | {} |",
                i + 1,
                name,
                r.config,
                m.lc_wait.p99_us,
                m.wait.p99_us,
                m.antt_proxy,
                m.preempt.p99_us,
                m.sheds,
                m.undispatched,
            );
        }
        out
    }
}

/// Replays every variant over the shared log, scores the command streams
/// and ranks them. `parallel` fans the grid out over the rayon pool (one
/// task per variant, results slotted by grid index, so the ranking —
/// and the report bytes — are independent of thread scheduling).
pub fn tune(log: &EventLog, variants: &[TuneVariant], parallel: bool) -> TuneReport {
    let events = log.batches.iter().map(|b| b.events.len()).sum();
    let rows = run_grid(variants.len(), parallel, |i| {
        let v = &variants[i];
        let batches = replay_under(log, v.config.clone());
        TuneRow {
            name: v.name.clone(),
            config: config_summary(&v.config),
            baseline: v.config == log.config,
            metrics: replay_metrics(&batches),
        }
    });
    TuneReport::rank(log.batches.len(), events, rows)
}

/// [`tune`] for multi-device placement logs: every variant replays the
/// full placement layer (routing, health, rebalancing) and is scored on
/// the fleet-wide flattened command stream.
pub fn tune_placement(
    log: &PlacementLog,
    variants: &[PlacementVariant],
    parallel: bool,
) -> TuneReport {
    let events = log.batches.iter().map(|b| b.events.len()).sum();
    let rows = run_grid(variants.len(), parallel, |i| {
        let v = &variants[i];
        let batches = replay_placement_under(log, v.config.clone());
        TuneRow {
            name: v.name.clone(),
            config: format!(
                "{}{}",
                config_summary(&v.config.arbiter),
                rebalance_summary(&v.config.rebalance)
            ),
            baseline: v.config == log.config,
            metrics: routed_metrics(&batches),
        }
    });
    TuneReport::rank(log.batches.len(), events, rows)
}

fn run_grid<F>(n: usize, parallel: bool, job: F) -> Vec<TuneRow>
where
    F: Fn(usize) -> TuneRow + Sync,
{
    if !parallel {
        return (0..n).map(job).collect();
    }
    let slots: Mutex<Vec<Option<TuneRow>>> = Mutex::new((0..n).map(|_| None).collect());
    rayon::scope(|s| {
        for i in 0..n {
            let slots = &slots;
            let job = &job;
            s.spawn(move |_| {
                let row = job(i);
                slots.lock().unwrap_or_else(|e| e.into_inner())[i] = Some(row);
            });
        }
    });
    slots
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .map(|r| r.expect("every grid slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_has_enough_variants() {
        let grid = default_grid(&ArbiterConfig::default());
        assert!(grid.len() >= 8, "{} variants", grid.len());
        assert_eq!(grid[0].name, "recorded");
    }

    #[test]
    fn parse_grid_cartesian() {
        let base = ArbiterConfig::default();
        let grid =
            parse_grid("preempt_bound_us=none,20000;enable_corun=on,off", &base).expect("parses");
        // baseline + 2*2 combinations (each axis re-expands around the
        // baseline, so: recorded, then 2 preempt variants each crossed
        // with 2 corun values plus the baseline crossed with them).
        assert!(grid.len() >= 5, "{} variants", grid.len());
        assert_eq!(grid[0].name, "recorded");
        assert!(parse_grid("bogus_key=1", &base).is_err());
        assert!(parse_grid("", &base).is_err());
    }
}
