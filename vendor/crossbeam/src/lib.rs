//! Offline stand-in for `crossbeam`, providing the `channel` module this
//! workspace uses: unbounded MPMC channels with crossbeam's disconnect
//! semantics (all senders dropped → receivers drain then see
//! `Disconnected`; all receivers dropped → `send` fails and returns the
//! value). Built on a mutex-protected deque plus a condvar; no `select!`
//! macro is provided — callers multiplex over a single channel instead.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            // Re-check under the lock so a racing receiver drop can't strand
            // the value unobserved.
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            q.push_back(value);
            drop(q);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Self {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.chan.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.chan.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .chan
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        pub fn is_empty(&self) -> bool {
            self.chan
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
        }

        pub fn len(&self) -> usize {
            self.chan
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Self {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn sender_drop_disconnects_after_drain() {
            let (tx, rx) = unbounded();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn receiver_drop_fails_send_with_value() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(3).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(3));
        }

        #[test]
        fn cross_thread_wakeup() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || rx.recv());
            std::thread::sleep(Duration::from_millis(5));
            tx.send(42u64).unwrap();
            assert_eq!(t.join().unwrap(), Ok(42));
        }
    }
}
