//! Property tests for the WAL frame codec: the reader must be *total*.
//!
//! Whatever bytes a crash, a sick disk or an adversary leaves in a
//! segment, `scan` must return — never panic — with the longest provably
//! valid record prefix, the byte length of that prefix, and the offset
//! where the log stopped being trustworthy. These properties drive
//! arbitrary record batches through encode→scan, cut the byte stream at
//! every possible point, flip single bits, and feed raw garbage.

use proptest::prelude::*;
use slate_core::arbiter::Event;
use slate_core::durability::wal::{encode_frame, scan, FRAME_HEADER_LEN};
use slate_core::durability::{WalIssue, WalRecord};
use slate_core::placement::replay::PlacementBatch;
use slate_kernels::workload::SloClass;

/// A placement event with no payload dependencies on scheduler state —
/// enough shape diversity to exercise the JSON codec.
fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        Just(Event::DeadlineTick),
        Just(Event::DrainBegan),
        any::<u64>().prop_map(|session| Event::SessionOpened { session }),
        any::<u64>().prop_map(|session| Event::SessionClosed { session }),
        any::<u64>().prop_map(|session| Event::SessionSevered { session }),
        (any::<u64>(), any::<bool>()).prop_map(|(lease, ok)| Event::KernelFinished { lease, ok }),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(session, used, capacity, bytes)| Event::MallocRequested {
                session,
                used,
                capacity,
                bytes,
            }
        ),
    ]
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        ("[a-z0-9 ]{0,16}", any::<u64>(), any::<bool>()).prop_map(|(user, session, lc)| {
            WalRecord::SessionMeta {
                session,
                user,
                slo: if lc {
                    SloClass::LatencyCritical
                } else {
                    SloClass::BestEffort
                },
            }
        }),
        any::<u64>().prop_map(|session| WalRecord::SessionClosed { session }),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(session, slate_ptr, device_ptr, bytes)| WalRecord::Alloc {
                session,
                slate_ptr,
                device_ptr,
                bytes,
            }
        ),
        (any::<u64>(), any::<u64>())
            .prop_map(|(session, slate_ptr)| WalRecord::Free { session, slate_ptr }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(session, launch_id, lease)| {
            WalRecord::LaunchAdmitted {
                session,
                launch_id,
                lease,
            }
        }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(session, launch_id)| WalRecord::LaunchDone { session, launch_id }),
        any::<u64>().prop_map(|epoch| WalRecord::Epoch { epoch }),
        (any::<u64>(), prop::collection::vec(arb_event(), 0..4)).prop_map(|(at, events)| {
            WalRecord::Batch {
                batch: PlacementBatch {
                    at,
                    events,
                    routed: Vec::new(),
                },
            }
        }),
    ]
}

/// Encodes `records` and returns (bytes, frame start offsets). The
/// offsets include the final end-of-log position, so `offsets[i]` is
/// where frame `i` begins and `offsets[records.len()]` the total length.
fn encode_all(records: &[WalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut offsets = vec![0usize];
    for r in records {
        let payload = serde_json::to_string(r).expect("serialize");
        bytes.extend_from_slice(&encode_frame(payload.as_bytes()));
        offsets.push(bytes.len());
    }
    (bytes, offsets)
}

proptest! {
    /// encode → scan is the identity on any record batch.
    #[test]
    fn roundtrip_any_batch(records in prop::collection::vec(arb_record(), 0..12)) {
        let (bytes, _) = encode_all(&records);
        let out = scan(&bytes);
        prop_assert_eq!(out.records, records);
        prop_assert_eq!(out.valid_len, bytes.len());
        prop_assert!(out.issue.is_none());
    }

    /// Cutting the stream at ANY byte yields exactly the records whose
    /// frames fit wholly in the prefix; a mid-frame cut is reported as a
    /// torn tail at that frame's start, never a panic.
    #[test]
    fn truncation_at_any_point_recovers_the_whole_frame_prefix(
        records in prop::collection::vec(arb_record(), 1..8),
        cut_frac in 0.0f64..1.0,
    ) {
        let (bytes, offsets) = encode_all(&records);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let out = scan(&bytes[..cut]);
        // How many whole frames survive the cut.
        let whole = offsets.iter().filter(|&&o| o <= cut).count() - 1;
        prop_assert_eq!(out.records.len(), whole);
        prop_assert_eq!(&out.records[..], &records[..whole]);
        prop_assert_eq!(out.valid_len, offsets[whole]);
        if offsets[whole] == cut {
            prop_assert!(out.issue.is_none());
        } else {
            prop_assert_eq!(
                out.issue,
                Some(WalIssue::TornTail { offset: offsets[whole] })
            );
        }
    }

    /// Flipping any single bit invalidates exactly the frame containing
    /// it: the scan keeps every earlier record, stops at that frame's
    /// start, and reports the offset. (CRC-32 detects all single-bit
    /// errors, so a flip can never smuggle a bogus record through.)
    #[test]
    fn single_bit_flip_stops_the_scan_at_the_damaged_frame(
        records in prop::collection::vec(arb_record(), 1..8),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (clean, offsets) = encode_all(&records);
        let idx = (((clean.len() - 1) as f64) * byte_frac) as usize;
        let mut bytes = clean.clone();
        bytes[idx] ^= 1 << bit;
        let out = scan(&bytes);
        // The frame the damaged byte belongs to.
        let victim = offsets.iter().filter(|&&o| o <= idx).count() - 1;
        prop_assert_eq!(&out.records[..], &records[..victim]);
        prop_assert_eq!(out.valid_len, offsets[victim]);
        let issue = out.issue.expect("a flipped bit must be reported");
        prop_assert_eq!(issue.offset(), offsets[victim]);
    }

    /// Raw garbage: the scan is total, the valid prefix is self-
    /// consistent (re-scanning it is clean and yields the same records).
    #[test]
    fn arbitrary_garbage_never_panics_and_prefix_is_stable(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let out = scan(&bytes);
        prop_assert!(out.valid_len <= bytes.len());
        let again = scan(&bytes[..out.valid_len]);
        prop_assert!(again.issue.is_none());
        prop_assert_eq!(again.valid_len, out.valid_len);
        prop_assert_eq!(again.records, out.records);
    }
}

/// The framing constant the properties above rely on.
#[test]
fn header_is_len_plus_crc() {
    assert_eq!(FRAME_HEADER_LEN, 8);
    let frame = encode_frame(b"x");
    assert_eq!(frame.len(), FRAME_HEADER_LEN + 1);
}
