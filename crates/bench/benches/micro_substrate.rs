//! Microbenchmarks of the framework's own hot paths.
//!
//! These are the operations whose cost the paper's §V-D worries about:
//! task-queue atomic pulls (serialized, contended), the incremental
//! blockIdx reconstruction in the injected loop, the source scanner, the
//! engine's rate recomputation, and occupancy/bandwidth arithmetic.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use slate_core::injector::inject_source;
use slate_core::queue::TaskQueue;
use slate_core::scanner::scan_kernels;
use slate_core::transform::TransformedKernel;
use slate_gpu_sim::device::{DeviceConfig, SmRange};
use slate_gpu_sim::engine::{Engine, SliceSpec};
use slate_gpu_sim::membw::{allocate, BwDemand};
use slate_gpu_sim::occupancy;
use slate_gpu_sim::perf::{ExecMode, KernelPerf};
use slate_kernels::grid::{BlockCoord, GridDim};
use slate_kernels::kernel::GpuKernel;
use std::sync::Arc;

const SRC: &str = r#"
__global__ void axpy(float* y, const float* x, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int stride = gridDim.x * blockDim.x;
    for (; i < n; i += stride) y[i] += a * x[i];
}
__global__ void tile(float* a) {
    a[blockIdx.y * gridDim.x + blockIdx.x] = 0.f;
}
"#;

struct Nop {
    grid: GridDim,
}
impl GpuKernel for Nop {
    fn name(&self) -> &str {
        "nop"
    }
    fn grid(&self) -> GridDim {
        self.grid
    }
    fn perf(&self) -> KernelPerf {
        KernelPerf::synthetic("nop", 100.0, 0.0)
    }
    fn run_block(&self, b: BlockCoord) {
        std::hint::black_box(b);
    }
}

fn bench(c: &mut Criterion) {
    // Task-queue pulls: uncontended throughput.
    let mut g = c.benchmark_group("task_queue");
    g.throughput(Throughput::Elements(1));
    g.bench_function("pull_uncontended", |b| {
        let q = TaskQueue::new(u64::MAX / 2, 10);
        b.iter(|| q.pull());
    });
    g.bench_function("pull_contended_8_threads", |b| {
        b.iter_custom(|iters| {
            let q = Arc::new(TaskQueue::new(u64::MAX / 2, 10));
            let start = std::time::Instant::now();
            std::thread::scope(|s| {
                for _ in 0..8 {
                    let q = q.clone();
                    s.spawn(move || {
                        for _ in 0..iters {
                            std::hint::black_box(q.pull());
                        }
                    });
                }
            });
            start.elapsed() / 8
        });
    });
    g.finish();

    // Injected-loop index reconstruction: blocks per second through the
    // incremental rollover path.
    let mut g = c.benchmark_group("transform");
    let k = TransformedKernel::new(Arc::new(Nop {
        grid: GridDim::d2(1000, 1000),
    }));
    g.throughput(Throughput::Elements(1000));
    g.bench_function("run_task_1000_blocks", |b| {
        b.iter(|| {
            k.run_task(slate_core::queue::Task {
                start: 12_345,
                len: 1000,
            })
        });
    });
    g.finish();

    // Source pipeline.
    let mut g = c.benchmark_group("injection");
    g.bench_function("scan_kernels", |b| b.iter(|| scan_kernels(SRC)));
    g.bench_function("inject_source", |b| b.iter(|| inject_source(SRC, 10)));
    g.finish();

    // Simulator arithmetic.
    let cfg = DeviceConfig::titan_xp();
    let perf = KernelPerf::synthetic("k", 5_000.0, 8_192.0);
    let mut g = c.benchmark_group("simulator");
    g.bench_function("occupancy", |b| {
        b.iter(|| occupancy::blocks_per_sm(&cfg, &perf))
    });
    g.bench_function("bandwidth_allocate_8", |b| {
        let demands: Vec<BwDemand> = (1..=8)
            .map(|i| BwDemand {
                demand: i as f64 * 1e10,
            })
            .collect();
        b.iter(|| allocate(480e9, &demands));
    });
    g.bench_function("engine_solo_run_100_events", |b| {
        b.iter(|| {
            let mut e = Engine::new(cfg.clone());
            for i in 0..50u64 {
                e.add_slice(SliceSpec {
                    perf: perf.clone(),
                    sm_range: SmRange::all(30),
                    blocks: 10_000 + i,
                    mode: ExecMode::SlateWorkers { task_size: 10 },
                    extra_lead_s: 0.0,
                    batch: 1,
                    tag: i,
                })
                .unwrap();
            }
            while e.step().is_some() {}
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
