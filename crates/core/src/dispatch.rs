//! The dispatch kernel (paper §IV-C, Listing 3) — dynamic kernel resizing.
//!
//! To resize a running kernel, Slate does not launch user kernels directly:
//! it launches a *dispatch kernel* that (1) clears the retreat flag,
//! (2) launches the user kernel's persistent workers onto the currently
//! designated SM range, (3) waits for them, and (4) if the task queue is
//! not yet drained — i.e. the workers retreated because the partition
//! changed — loops and relaunches onto the updated range. The scheduling
//! index `slateIdx` carries progress across relaunches.
//!
//! [`Dispatcher::run`] is that loop, executing the user kernel functionally
//! with real worker threads; [`DispatchHandle::resize`] is the runtime-side
//! signal that adjusts the SM range mid-flight.

use crate::queue::TaskQueue;
use crate::transform::TransformedKernel;
use crate::workers::{launch_workers, WorkerRunStats};
use parking_lot::Mutex;
use slate_gpu_sim::device::{DeviceConfig, SmRange};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Shared state between the dispatch loop and the runtime.
#[derive(Debug)]
struct DispatchState {
    queue: TaskQueue,
    range: Mutex<SmRange>,
    /// Bumped on every resize; lets the loop detect a resize that raced
    /// with a relaunch boundary.
    generation: AtomicU64,
    /// Raised by the watchdog: the dispatch loop must stop relaunching and
    /// return with the queue undrained.
    evicted: AtomicBool,
}

/// Handle the runtime uses to resize a dispatched kernel while it runs.
#[derive(Debug, Clone)]
pub struct DispatchHandle {
    state: Arc<DispatchState>,
}

impl DispatchHandle {
    /// Adjusts the designated SM range: signals retreat so the current
    /// worker set exits at the next task boundary, after which the dispatch
    /// loop relaunches onto `new_range`.
    pub fn resize(&self, new_range: SmRange) {
        *self.state.range.lock() = new_range;
        self.state.generation.fetch_add(1, Ordering::Release);
        self.state.queue.signal_retreat();
    }

    /// Evicts the kernel from the device: the retreat flag is raised like
    /// for a resize, but instead of relaunching the dispatch loop exits
    /// with whatever progress was made. This is the watchdog's remedy for
    /// a kernel that exceeded its deadline — the paper's own resize
    /// mechanism (§IV-C) repurposed as bounded preemption.
    pub fn evict(&self) {
        self.state.evicted.store(true, Ordering::Release);
        self.state.queue.signal_retreat();
    }

    /// Whether [`DispatchHandle::evict`] has been called.
    pub fn is_evicted(&self) -> bool {
        self.state.evicted.load(Ordering::Acquire)
    }

    /// Current progress in blocks (the carried `slateIdx`).
    pub fn progress(&self) -> u64 {
        self.state.queue.progress()
    }

    /// Whether the user kernel has completed all blocks.
    pub fn done(&self) -> bool {
        self.state.queue.drained()
    }
}

/// Summary of a completed dispatch (the user kernel ran to completion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchOutcome {
    /// Worker launches performed (1 = never resized mid-run).
    pub launches: u32,
    /// Per-launch worker statistics.
    pub runs: Vec<WorkerRunStats>,
    /// Absolute `slateIdx` progress at exit: the grid size unless evicted.
    /// For a dispatch resumed from carried progress
    /// ([`Dispatcher::resume`]) this includes the carried blocks.
    pub blocks: u64,
    /// Total queue pulls across all launches.
    pub queue_pulls: u64,
    /// The dispatch was evicted before the queue drained; `blocks` is
    /// partial and the kernel's results are incomplete.
    pub evicted: bool,
}

/// The dispatch kernel for one user kernel execution.
pub struct Dispatcher {
    kernel: TransformedKernel,
    device: DeviceConfig,
    state: Arc<DispatchState>,
}

impl Dispatcher {
    /// Prepares a dispatch of `kernel` with the given task size, initially
    /// bound to `range`.
    pub fn new(
        device: DeviceConfig,
        kernel: TransformedKernel,
        task_size: u32,
        range: SmRange,
    ) -> Self {
        Self::resume(device, kernel, task_size, range, 0)
    }

    /// Prepares a dispatch that resumes from `start` blocks of carried
    /// progress — the relaunch path after an eviction. The task queue picks
    /// up at the carried `slateIdx`, so blocks `[0, start)` are treated as
    /// already executed and [`DispatchOutcome::blocks`] reports absolute
    /// progress including them.
    pub fn resume(
        device: DeviceConfig,
        kernel: TransformedKernel,
        task_size: u32,
        range: SmRange,
        start: u64,
    ) -> Self {
        let state = Arc::new(DispatchState {
            queue: TaskQueue::with_progress(start, kernel.slate_max(), task_size),
            range: Mutex::new(range),
            generation: AtomicU64::new(0),
            evicted: AtomicBool::new(false),
        });
        Self {
            kernel,
            device,
            state,
        }
    }

    /// The resize handle to give to the runtime.
    pub fn handle(&self) -> DispatchHandle {
        DispatchHandle {
            state: self.state.clone(),
        }
    }

    /// Listing 3: launch workers, wait, relaunch onto the adjusted range
    /// until the job completes. Blocks the calling thread (the paper's
    /// dispatch kernel persists on-device through the user kernel's whole
    /// execution).
    pub fn run(self) -> DispatchOutcome {
        let mut runs = Vec::new();
        loop {
            let gen_before = self.state.generation.load(Ordering::Acquire);
            let range = *self.state.range.lock();
            self.state.queue.clear_retreat();
            // A resize may have slipped between the generation read and the
            // clear; re-raise the retreat so this launch exits promptly and
            // picks up the new range on the next iteration. An eviction
            // must never be un-signalled by the clear either.
            if self.state.generation.load(Ordering::Acquire) != gen_before
                || self.state.evicted.load(Ordering::Acquire)
            {
                self.state.queue.signal_retreat();
            }
            let stats = launch_workers(&self.device, &self.kernel, &self.state.queue, range);
            runs.push(stats);
            // Evicted: do NOT start over — give the SMs back undrained.
            if self.state.evicted.load(Ordering::Acquire) {
                break;
            }
            // "if job is incomplete, start over"
            if self.state.queue.drained() {
                break;
            }
        }
        DispatchOutcome {
            launches: runs.len() as u32,
            blocks: self.state.queue.progress(),
            queue_pulls: self.state.queue.pull_count(),
            evicted: self.state.evicted.load(Ordering::Acquire),
            runs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slate_gpu_sim::buffer::GpuBuffer;
    use slate_gpu_sim::perf::KernelPerf;
    use slate_kernels::grid::{BlockCoord, GridDim};
    use slate_kernels::kernel::GpuKernel;

    struct Counter {
        grid: GridDim,
        hits: Arc<GpuBuffer>,
    }

    impl GpuKernel for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn grid(&self) -> GridDim {
            self.grid
        }
        fn perf(&self) -> KernelPerf {
            KernelPerf::synthetic("counter", 100.0, 4.0)
        }
        fn run_block(&self, b: BlockCoord) {
            self.hits.fetch_add_u32(self.grid.flat_of(b) as usize, 1);
        }
    }

    fn counter(grid: GridDim) -> (TransformedKernel, Arc<GpuBuffer>) {
        let hits = Arc::new(GpuBuffer::new(grid.total_blocks() as usize * 4));
        (
            TransformedKernel::new(Arc::new(Counter {
                grid,
                hits: hits.clone(),
            })),
            hits,
        )
    }

    fn assert_each_block_once(hits: &GpuBuffer, total: u64) {
        for i in 0..total {
            assert_eq!(hits.load_u32(i as usize), 1, "block {i}");
        }
    }

    #[test]
    fn undisturbed_dispatch_launches_once() {
        let device = DeviceConfig::tiny(4);
        let grid = GridDim::d2(40, 10);
        let (k, hits) = counter(grid);
        let d = Dispatcher::new(device, k, 10, SmRange::all(4));
        let out = d.run();
        assert_eq!(out.launches, 1);
        assert_eq!(out.blocks, 400);
        assert_each_block_once(&hits, 400);
    }

    #[test]
    fn resize_before_run_starts_on_the_new_range() {
        let device = DeviceConfig::tiny(4);
        let grid = GridDim::d1(5_000);
        let (k, hits) = counter(grid);
        let d = Dispatcher::new(device.clone(), k, 10, SmRange::all(4));
        let h = d.handle();
        // Resize before running: the dispatch loop picks up the new range
        // immediately (the raced retreat at worst forces one relaunch).
        h.resize(SmRange::new(0, 1));
        let out = d.run();
        assert_eq!(out.blocks, 5_000);
        assert_each_block_once(&hits, 5_000);
        assert!(h.done());
        // The final launch ran on the shrunken range: half the dispatched
        // workers were gated off SMs 2 and 3.
        let last = out.runs.last().unwrap();
        assert!(last.gated_workers > 0, "gate must have fired: {last:?}");
    }

    #[test]
    fn concurrent_resizes_never_lose_or_duplicate_blocks() {
        let device = DeviceConfig::tiny(4);
        let grid = GridDim::d2(200, 50); // 10k blocks
        let (k, hits) = counter(grid);
        let d = Dispatcher::new(device, k, 5, SmRange::all(4));
        let h = d.handle();
        let resizer = std::thread::spawn(move || {
            let ranges = [
                SmRange::new(0, 0),
                SmRange::new(1, 3),
                SmRange::new(2, 2),
                SmRange::all(4),
            ];
            for r in ranges {
                std::thread::sleep(std::time::Duration::from_micros(200));
                h.resize(r);
            }
        });
        let out = d.run();
        resizer.join().unwrap();
        assert_eq!(out.blocks, 10_000);
        assert_each_block_once(&hits, 10_000);
    }

    /// A kernel whose blocks take real wall time, so an eviction can land
    /// mid-flight deterministically.
    struct Slow {
        grid: GridDim,
    }

    impl GpuKernel for Slow {
        fn name(&self) -> &str {
            "slow"
        }
        fn grid(&self) -> GridDim {
            self.grid
        }
        fn perf(&self) -> KernelPerf {
            KernelPerf::synthetic("slow", 100.0, 4.0)
        }
        fn run_block(&self, _b: BlockCoord) {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }

    #[test]
    fn eviction_stops_the_relaunch_loop_with_partial_progress() {
        let device = DeviceConfig::tiny(2);
        let grid = GridDim::d1(100_000);
        let k = TransformedKernel::new(Arc::new(Slow { grid }));
        let d = Dispatcher::new(device, k, 1, SmRange::all(2));
        let h = d.handle();
        let evictor = std::thread::spawn({
            let h = h.clone();
            move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                h.evict();
            }
        });
        let out = d.run();
        evictor.join().unwrap();
        assert!(out.evicted);
        assert!(h.is_evicted());
        assert!(!h.done(), "queue must not be drained after eviction");
        assert!(
            out.blocks < grid.total_blocks(),
            "eviction landed mid-flight: {} blocks",
            out.blocks
        );
        assert!(out.runs.last().unwrap().retreated);
    }

    /// A counting kernel whose blocks take real wall time, so randomized
    /// churn (resizes and evictions) lands mid-flight.
    struct SlowCounter {
        grid: GridDim,
        hits: Arc<GpuBuffer>,
        delay_us: u64,
    }

    impl GpuKernel for SlowCounter {
        fn name(&self) -> &str {
            "slow-counter"
        }
        fn grid(&self) -> GridDim {
            self.grid
        }
        fn perf(&self) -> KernelPerf {
            KernelPerf::synthetic("slow-counter", 100.0, 4.0)
        }
        fn run_block(&self, b: BlockCoord) {
            self.hits.fetch_add_u32(self.grid.flat_of(b) as usize, 1);
            std::thread::sleep(std::time::Duration::from_micros(self.delay_us));
        }
    }

    fn xorshift(s: &mut u64) -> u64 {
        let mut x = *s;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *s = x;
        x
    }

    fn rand_range(s: &mut u64, num_sms: u32) -> SmRange {
        let lo = (xorshift(s) % num_sms as u64) as u32;
        let hi = lo + (xorshift(s) % (num_sms - lo) as u64) as u32;
        SmRange::new(lo, hi)
    }

    #[test]
    fn resume_picks_up_carried_progress() {
        // An evicted dispatch reports absolute partial progress; a fresh
        // dispatcher resumed from it covers exactly the remainder.
        let device = DeviceConfig::tiny(4);
        let grid = GridDim::d2(60, 20); // 1200 blocks
        let hits = Arc::new(GpuBuffer::new(grid.total_blocks() as usize * 4));
        let k = TransformedKernel::new(Arc::new(SlowCounter {
            grid,
            hits: hits.clone(),
            delay_us: 30,
        }));
        let d = Dispatcher::new(device.clone(), k.clone(), 1, SmRange::all(4));
        let h = d.handle();
        let evictor = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            h.evict();
        });
        let out = d.run();
        evictor.join().unwrap();
        assert!(out.evicted);
        assert!(out.blocks < grid.total_blocks(), "evicted mid-flight");
        // Relaunch from the carried slateIdx on a different range.
        let d2 = Dispatcher::resume(device, k, 1, SmRange::new(0, 1), out.blocks);
        let out2 = d2.run();
        assert!(!out2.evicted);
        assert_eq!(out2.blocks, grid.total_blocks(), "absolute progress");
        assert_each_block_once(&hits, grid.total_blocks());
    }

    #[test]
    fn randomized_churn_of_resizes_evictions_and_relaunches_covers_each_block_once() {
        for seed in [3u64, 0x5EED, 0xBEEF, 0xC0FFEE] {
            let device = DeviceConfig::tiny(4);
            let grid = GridDim::d2(97, 13); // 1261 blocks
            let hits = Arc::new(GpuBuffer::new(grid.total_blocks() as usize * 4));
            let k = TransformedKernel::new(Arc::new(SlowCounter {
                grid,
                hits: hits.clone(),
                delay_us: 15,
            }));
            let mut rng = seed | 1;
            let mut start = 0u64;
            let mut stagings = 0u32;
            loop {
                stagings += 1;
                assert!(stagings <= 50, "churn failed to converge (seed {seed})");
                let task = 1 + (xorshift(&mut rng) % 8) as u32;
                let d = Dispatcher::resume(
                    device.clone(),
                    k.clone(),
                    task,
                    rand_range(&mut rng, 4),
                    start,
                );
                let h = d.handle();
                // Pre-draw the whole churn schedule so the thread needs no rng.
                let resizes: Vec<SmRange> = (0..xorshift(&mut rng) % 4)
                    .map(|_| rand_range(&mut rng, 4))
                    .collect();
                let evict = xorshift(&mut rng).is_multiple_of(2);
                let churner = std::thread::spawn(move || {
                    for r in resizes {
                        std::thread::sleep(std::time::Duration::from_micros(300));
                        h.resize(r);
                    }
                    if evict {
                        std::thread::sleep(std::time::Duration::from_micros(400));
                        h.evict();
                    }
                });
                let out = d.run();
                churner.join().unwrap();
                assert!(out.blocks <= grid.total_blocks());
                if out.evicted {
                    // Relaunch the remainder from the absolute progress.
                    start = out.blocks;
                } else {
                    assert_eq!(out.blocks, grid.total_blocks(), "seed {seed}");
                    break;
                }
            }
            assert_each_block_once(&hits, grid.total_blocks());
        }
    }

    #[test]
    fn progress_is_monotonic_and_reaches_total() {
        let device = DeviceConfig::tiny(2);
        let (k, _) = counter(GridDim::d1(1_000));
        let d = Dispatcher::new(device, k, 10, SmRange::all(2));
        let h = d.handle();
        assert_eq!(h.progress(), 0);
        assert!(!h.done());
        let out = d.run();
        assert_eq!(h.progress(), 1_000);
        assert!(h.done());
        assert!(out.queue_pulls >= 100);
    }
}
