//! CUDA-style occupancy calculation.
//!
//! Determines how many thread blocks of a kernel can be simultaneously
//! resident on one SM, limited by the per-SM thread, block, register and
//! shared-memory budgets. Slate sizes its persistent worker set to exactly
//! this number times the designated SM count ("*Slate* always sets the size
//! of workers as the maximum number of thread blocks that the designated SMs
//! can support", paper §III-C).

use crate::device::DeviceConfig;
use crate::perf::KernelPerf;

/// Register allocation granularity (registers are allocated in chunks).
const REG_ALLOC_UNIT: u32 = 256;
/// Shared-memory allocation granularity in bytes.
const SMEM_ALLOC_UNIT: u32 = 256;

fn round_up(v: u32, unit: u32) -> u32 {
    if v == 0 {
        0
    } else {
        v.div_ceil(unit) * unit
    }
}

/// Maximum resident blocks of `kernel` per SM on `device`.
///
/// Returns at least 1 if the block fits at all, 0 if a single block exceeds
/// some per-SM limit (such a kernel cannot launch).
pub fn blocks_per_sm(device: &DeviceConfig, kernel: &KernelPerf) -> u32 {
    let threads = kernel.threads_per_block;
    if threads == 0 || threads > device.max_threads_per_sm {
        return 0;
    }
    let by_threads = device.max_threads_per_sm / threads;
    let by_blocks = device.max_blocks_per_sm;

    let regs_per_block = round_up(kernel.regs_per_thread * threads, REG_ALLOC_UNIT);
    let by_regs = if regs_per_block == 0 {
        u32::MAX
    } else if regs_per_block > device.regs_per_sm {
        0
    } else {
        device.regs_per_sm / regs_per_block
    };

    let smem = round_up(kernel.smem_per_block, SMEM_ALLOC_UNIT);
    let by_smem = if smem == 0 {
        u32::MAX
    } else if smem > device.smem_per_sm {
        0
    } else {
        device.smem_per_sm / smem
    };

    by_threads.min(by_blocks).min(by_regs).min(by_smem)
}

/// Total resident blocks on an SM range of `sms` SMs.
pub fn workers_for(device: &DeviceConfig, kernel: &KernelPerf, sms: u32) -> u64 {
    blocks_per_sm(device, kernel) as u64 * sms as u64
}

/// Occupancy as a fraction of the SM's thread capacity, in `[0, 1]`.
pub fn occupancy_fraction(device: &DeviceConfig, kernel: &KernelPerf) -> f64 {
    let blocks = blocks_per_sm(device, kernel);
    (blocks * kernel.threads_per_block) as f64 / device.max_threads_per_sm as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(threads: u32, regs: u32, smem: u32) -> KernelPerf {
        let mut p = KernelPerf::synthetic("k", 1000.0, 1024.0);
        p.threads_per_block = threads;
        p.regs_per_thread = regs;
        p.smem_per_block = smem;
        p
    }

    #[test]
    fn thread_limited() {
        let d = DeviceConfig::titan_xp();
        // 2048 threads / 256 per block = 8 blocks, under the 32-block cap.
        assert_eq!(blocks_per_sm(&d, &kernel(256, 16, 0)), 8);
    }

    #[test]
    fn block_cap_limited() {
        let d = DeviceConfig::titan_xp();
        // 2048/32 = 64 by threads, but the hardware caps at 32 blocks.
        assert_eq!(blocks_per_sm(&d, &kernel(32, 16, 0)), 32);
    }

    #[test]
    fn register_limited() {
        let d = DeviceConfig::titan_xp();
        // 256 threads x 64 regs = 16384 regs/block -> 65536/16384 = 4 blocks.
        assert_eq!(blocks_per_sm(&d, &kernel(256, 64, 0)), 4);
    }

    #[test]
    fn smem_limited() {
        let d = DeviceConfig::titan_xp();
        // 48 KiB smem per block -> 96/48 = 2 blocks.
        assert_eq!(blocks_per_sm(&d, &kernel(128, 16, 48 * 1024)), 2);
    }

    #[test]
    fn unlaunchable_kernel() {
        let d = DeviceConfig::titan_xp();
        assert_eq!(blocks_per_sm(&d, &kernel(128, 16, 200 * 1024)), 0);
        // threads_per_block beyond the SM capacity
        let mut k = kernel(512, 16, 0);
        k.threads_per_block = 4096;
        assert_eq!(blocks_per_sm(&d, &k), 0);
    }

    #[test]
    fn workers_scale_with_sms() {
        let d = DeviceConfig::titan_xp();
        let k = kernel(256, 16, 0);
        assert_eq!(workers_for(&d, &k, 30), 8 * 30);
        assert_eq!(workers_for(&d, &k, 10), 8 * 10);
    }

    #[test]
    fn occupancy_fraction_full_and_partial() {
        let d = DeviceConfig::titan_xp();
        assert!((occupancy_fraction(&d, &kernel(256, 16, 0)) - 1.0).abs() < 1e-12);
        // Register-limited kernel: 4 blocks x 256 threads / 2048 = 0.5.
        assert!((occupancy_fraction(&d, &kernel(256, 64, 0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn round_up_unit() {
        assert_eq!(round_up(0, 256), 0);
        assert_eq!(round_up(1, 256), 256);
        assert_eq!(round_up(256, 256), 256);
        assert_eq!(round_up(257, 256), 512);
    }
}
