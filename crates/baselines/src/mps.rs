//! NVIDIA MPS baseline.
//!
//! MPS (Multi-Process Service) interposes a daemon that funnels every
//! client's CUDA context into a single server context, so kernels from
//! different processes *can* execute concurrently — but block placement
//! follows the hardware *leftover* policy: a second kernel only receives SM
//! slots the first kernel is no longer filling. For the evaluation's large
//! kernels ("the large number of blocks and threads ... prevents spatial
//! sharing", §V-C) this degenerates to consecutive execution — without the
//! context-switch and time-slice waste vanilla CUDA pays, which is where
//! MPS's ~6% advantage over CUDA comes from, and with a small per-launch
//! proxy cost, which is why its solo application times run slightly above
//! CUDA's (Fig. 6).

use crate::runtime::{RunOutcome, Runtime};
use crate::serial::{run_serialized, SerialOverheads};
use slate_gpu_sim::device::DeviceConfig;
use slate_kernels::workload::AppSpec;

/// Per-launch proxy relay cost through the MPS daemon.
pub const MPS_PER_LAUNCH_S: f64 = 30e-6;
/// Fraction of kernel time lost to leftover-policy tail interference when
/// another client contends (next kernel's blocks bleeding into the drain).
pub const MPS_CONTENDED_PENALTY: f64 = 0.035;
/// One-time per-client session establishment cost.
pub const MPS_SESSION_SETUP_S: f64 = 0.05;

/// The NVIDIA MPS runtime.
#[derive(Debug, Clone)]
pub struct MpsRuntime {
    cfg: DeviceConfig,
}

impl MpsRuntime {
    /// Creates the runtime for a device.
    pub fn new(cfg: DeviceConfig) -> Self {
        Self { cfg }
    }

    fn overheads(&self) -> SerialOverheads {
        SerialOverheads {
            label: "MPS".into(),
            ctx_switch_s: 0.0,
            timeslice_waste: 0.0,
            per_launch_s: MPS_PER_LAUNCH_S,
            contended_penalty: MPS_CONTENDED_PENALTY,
            session_setup_s: MPS_SESSION_SETUP_S,
            leftover_overlap: true,
        }
    }
}

impl Runtime for MpsRuntime {
    fn label(&self) -> &str {
        "MPS"
    }

    fn device(&self) -> &DeviceConfig {
        &self.cfg
    }

    fn run(&self, apps: &[AppSpec]) -> RunOutcome {
        run_serialized(&self.cfg, &self.overheads(), apps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuda::CudaRuntime;
    use slate_kernels::workload::Benchmark;

    #[test]
    fn mps_beats_cuda_on_pairs() {
        let cfg = DeviceConfig::titan_xp();
        let mps = MpsRuntime::new(cfg.clone());
        let cuda = CudaRuntime::new(cfg);
        let a = Benchmark::BS.app().scaled_down(20);
        let b = Benchmark::BS.app().scaled_down(20);
        let m = mps.run(&[a.clone(), b.clone()]);
        let c = cuda.run(&[a, b]);
        let gain = m.throughput_gain_over(&c);
        assert!(
            (0.01..0.15).contains(&gain),
            "MPS should beat CUDA by a few percent on pairs, got {gain}"
        );
    }

    #[test]
    fn mps_solo_slightly_slower_than_cuda() {
        let cfg = DeviceConfig::titan_xp();
        let mps = MpsRuntime::new(cfg.clone());
        let cuda = CudaRuntime::new(cfg);
        let app = Benchmark::TR.app().scaled_down(10);
        let tm = mps.solo_time(&app);
        let tc = cuda.solo_time(&app);
        assert!(tm > tc, "MPS daemon adds overhead solo: {tm} vs {tc}");
        assert!(tm < tc * 1.1, "but only slightly: {tm} vs {tc}");
    }

    #[test]
    fn mps_reports_comm_time() {
        let cfg = DeviceConfig::titan_xp();
        let mps = MpsRuntime::new(cfg);
        let app = Benchmark::RG.app().scaled_down(100);
        let out = mps.run(std::slice::from_ref(&app));
        assert!(out.apps[0].comm_s > 0.0);
    }
}
