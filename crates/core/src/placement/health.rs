//! Per-device health: the failure-domain state machine behind the
//! placement layer.
//!
//! Since PR 5 the unit of failure is a whole device, not just a kernel or
//! a client: one wedged GPU strands every session routed to it. The
//! placement layer therefore tracks one [`HealthState`] per device,
//! driven by the arbiter-visible
//! [`Event::DeviceDown`](crate::arbiter::Event::DeviceDown) /
//! [`Event::DeviceUp`](crate::arbiter::Event::DeviceUp) events:
//!
//! ```text
//!            soft down           soft down
//!  Healthy ───────────▶ Degraded ───────────▶ Quarantined ──(timer)──▶ Probation
//!     ▲                    │                      ▲    ▲                   │
//!     │        up          │       hard down      │    │ soft down        │ (timer)
//!     ├◀───────────────────┘          │           │    └───────────────── │
//!     │                               ▼           │ up                    │
//!     └◀───(probation expires)───  Failed ────────┘                       ▼
//!                                                                      Healthy
//! ```
//!
//! * a **hard** down (device off the bus) fails the device outright;
//! * a **soft** down (stall, flap) degrades it first and quarantines it
//!   on repetition — a single hiccup doesn't trigger an evacuation, a
//!   recurring one does;
//! * leaving service (entering `Quarantined` or `Failed`) triggers the
//!   layer's evacuation of every live lease;
//! * recovery is *gated*: a returning device sits out a seeded probation
//!   window before it is re-admitted as a routing target, so a flapping
//!   device cannot re-capture traffic between its failures.
//!
//! Every draw (probation length) comes from a seeded xorshift advanced in
//! event order, so a recorded run replays its health transitions — and
//! hence its evacuations and routing — byte-identically.

use crate::arbiter::Tick;
use serde::{Deserialize, Serialize};

/// Knobs of the per-device health state machine. Serialized into every
/// [`PlacementLog`](super::replay::PlacementLog) so replays transition
/// under the recorded windows and seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthConfig {
    /// Logical µs a quarantined device sits out before entering
    /// probation.
    pub quarantine_us: u64,
    /// Shortest probation window, in logical µs.
    pub probation_min_us: u64,
    /// Longest probation window, in logical µs. The actual window is a
    /// seeded draw in `[min, max]`.
    pub probation_max_us: u64,
    /// Seed of the probation-window xorshift (zero is remapped
    /// internally).
    pub seed: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            quarantine_us: 10_000,
            probation_min_us: 2_000,
            probation_max_us: 8_000,
            seed: 0x5EED_4EA1,
        }
    }
}

/// The health of one device, as the placement layer sees it.
///
/// Serializable so durable daemon snapshots can persist the fleet's health
/// and recovery restores it exactly (timers and all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum HealthState {
    /// In service, behaving.
    #[default]
    Healthy,
    /// In service but signalled a soft failure; one more and it is
    /// quarantined. Still a routing target.
    Degraded,
    /// Out of service until the timer expires; evacuated on entry.
    Quarantined {
        /// When the quarantine lifts (into probation).
        until: Tick,
    },
    /// Hard-lost; only an explicit
    /// [`Event::DeviceUp`](crate::arbiter::Event::DeviceUp) recovers it.
    /// Evacuated on entry.
    Failed,
    /// Back up, but not yet trusted: no new routes until the seeded
    /// window expires.
    Probation {
        /// When the device is re-admitted as a routing target.
        until: Tick,
    },
}

impl HealthState {
    /// Whether the device is in service as a routing/migration target.
    pub fn eligible(&self) -> bool {
        matches!(self, HealthState::Healthy | HealthState::Degraded)
    }

    /// Whether live leases must be moved off the device (it just left,
    /// or is out of, service).
    pub fn out_of_service(&self) -> bool {
        matches!(self, HealthState::Quarantined { .. } | HealthState::Failed)
    }
}

/// Serializable state of a `HealthTracker`: the per-device states plus
/// the live probation-rng word. The config is not repeated here — it is
/// already persisted inside the layer's `PlacementConfig`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthSnapshot {
    pub(crate) states: Vec<HealthState>,
    pub(crate) rng: u64,
}

/// The per-layer tracker: one [`HealthState`] per device plus the seeded
/// probation rng.
#[derive(Debug)]
pub(super) struct HealthTracker {
    config: HealthConfig,
    states: Vec<HealthState>,
    rng: u64,
}

impl HealthTracker {
    /// Captures the tracker for a durable snapshot.
    pub(super) fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            states: self.states.clone(),
            rng: self.rng,
        }
    }

    /// Rebuilds a tracker from a snapshot, resuming the rng mid-stream.
    pub(super) fn restore(config: HealthConfig, snap: HealthSnapshot) -> Self {
        Self {
            config,
            states: snap.states,
            rng: snap.rng.max(1),
        }
    }

    pub(super) fn new(config: HealthConfig, devices: usize) -> Self {
        // xorshift never leaves 0; fold the seed through a golden-ratio
        // mix so seed 0 is as usable as any other.
        let rng = (config.seed ^ 0x9E37_79B9_7F4A_7C15).max(1);
        Self {
            config,
            states: vec![HealthState::Healthy; devices],
            rng,
        }
    }

    pub(super) fn state(&self, device: usize) -> HealthState {
        self.states[device]
    }

    /// Per-device routing eligibility, in device order.
    pub(super) fn eligibility(&self) -> Vec<bool> {
        self.states.iter().map(|s| s.eligible()).collect()
    }

    /// Allocation-free [`HealthTracker::eligibility`]: clears `buf` and
    /// fills it in device order, reusing its capacity.
    pub(super) fn fill_eligibility(&self, buf: &mut Vec<bool>) {
        buf.clear();
        buf.extend(self.states.iter().map(|s| s.eligible()));
    }

    /// Devices currently eligible as routing targets.
    pub(super) fn eligible_count(&self) -> usize {
        self.states.iter().filter(|s| s.eligible()).count()
    }

    fn draw_probation(&mut self, now: Tick) -> Tick {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        let span = self
            .config
            .probation_max_us
            .saturating_sub(self.config.probation_min_us)
            .saturating_add(1);
        now + self.config.probation_min_us + x % span
    }

    /// Applies a [`DeviceDown`](crate::arbiter::Event::DeviceDown) for
    /// `device`. Returns `true` when the device just *left* service —
    /// the layer must evacuate it.
    pub(super) fn on_down(&mut self, device: usize, hard: bool, now: Tick) -> bool {
        let was_in_service = !self.states[device].out_of_service();
        let next = if hard {
            HealthState::Failed
        } else {
            match self.states[device] {
                HealthState::Healthy => HealthState::Degraded,
                // Repetition (or a failure while still on probation)
                // quarantines: the device is flapping, not hiccuping.
                HealthState::Degraded | HealthState::Probation { .. } => HealthState::Quarantined {
                    until: now + self.config.quarantine_us,
                },
                // Already out of service: a soft signal refreshes the
                // quarantine clock, a Failed device stays failed.
                HealthState::Quarantined { .. } => HealthState::Quarantined {
                    until: now + self.config.quarantine_us,
                },
                HealthState::Failed => HealthState::Failed,
            }
        };
        self.states[device] = next;
        was_in_service && next.out_of_service()
    }

    /// Applies a [`DeviceUp`](crate::arbiter::Event::DeviceUp) for
    /// `device`: out-of-service devices enter their seeded probation, a
    /// degraded device is cleared.
    pub(super) fn on_up(&mut self, device: usize, now: Tick) {
        self.states[device] = match self.states[device] {
            HealthState::Failed | HealthState::Quarantined { .. } => HealthState::Probation {
                until: self.draw_probation(now),
            },
            HealthState::Degraded => HealthState::Healthy,
            s @ (HealthState::Healthy | HealthState::Probation { .. }) => s,
        };
    }

    /// Advances the timers: expired quarantines enter probation, expired
    /// probations re-admit the device.
    pub(super) fn tick(&mut self, now: Tick) {
        for d in 0..self.states.len() {
            self.states[d] = match self.states[d] {
                HealthState::Quarantined { until } if now >= until => HealthState::Probation {
                    until: self.draw_probation(now),
                },
                HealthState::Probation { until } if now >= until => HealthState::Healthy,
                s => s,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig {
            quarantine_us: 100,
            probation_min_us: 10,
            probation_max_us: 20,
            seed: 42,
        }
    }

    #[test]
    fn hard_down_fails_and_requires_up_plus_probation() {
        let mut t = HealthTracker::new(cfg(), 2);
        assert!(t.on_down(0, true, 5), "leaving service asks for evacuation");
        assert_eq!(t.state(0), HealthState::Failed);
        assert_eq!(t.eligibility(), vec![false, true]);
        // Timers never resurrect a failed device.
        t.tick(1_000_000);
        assert_eq!(t.state(0), HealthState::Failed);
        // Recovery goes through probation before re-admission.
        t.on_up(0, 1_000_000);
        let HealthState::Probation { until } = t.state(0) else {
            panic!("recovered device must be on probation");
        };
        assert!((1_000_010..=1_000_020).contains(&until));
        assert!(!t.state(0).eligible(), "probation is not yet eligible");
        t.tick(until);
        assert_eq!(t.state(0), HealthState::Healthy);
    }

    #[test]
    fn soft_downs_escalate_healthy_degraded_quarantined() {
        let mut t = HealthTracker::new(cfg(), 1);
        assert!(!t.on_down(0, false, 0), "first hiccup only degrades");
        assert_eq!(t.state(0), HealthState::Degraded);
        assert!(t.state(0).eligible(), "degraded still serves");
        assert!(t.on_down(0, false, 10), "repetition quarantines");
        assert_eq!(t.state(0), HealthState::Quarantined { until: 110 });
        // Quarantine expires into probation, probation into healthy.
        t.tick(110);
        assert!(matches!(t.state(0), HealthState::Probation { .. }));
        t.tick(10_000);
        assert_eq!(t.state(0), HealthState::Healthy);
    }

    #[test]
    fn up_clears_degraded_and_flap_on_probation_requarantines() {
        let mut t = HealthTracker::new(cfg(), 1);
        t.on_down(0, false, 0);
        t.on_up(0, 5);
        assert_eq!(t.state(0), HealthState::Healthy);
        // Fail hard, recover, then flap during probation: straight back
        // into quarantine — no evacuation signal (nothing was re-routed
        // there yet), but no re-admission either.
        assert!(t.on_down(0, true, 10));
        t.on_up(0, 20);
        assert!(matches!(t.state(0), HealthState::Probation { .. }));
        // A probation flap re-quarantines; the evacuation it requests is
        // normally a no-op (the device was drained when it failed).
        assert!(t.on_down(0, false, 25));
        assert!(matches!(t.state(0), HealthState::Quarantined { .. }));
    }

    #[test]
    fn probation_draws_are_seeded_and_deterministic() {
        let draw = |seed: u64| {
            let mut t = HealthTracker::new(HealthConfig { seed, ..cfg() }, 1);
            t.on_down(0, true, 0);
            t.on_up(0, 0);
            match t.state(0) {
                HealthState::Probation { until } => until,
                s => panic!("expected probation, got {s:?}"),
            }
        };
        assert_eq!(draw(7), draw(7), "same seed, same window");
        let distinct: std::collections::BTreeSet<Tick> = (0..16).map(draw).collect();
        assert!(distinct.len() > 1, "different seeds spread the window");
    }
}
