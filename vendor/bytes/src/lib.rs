//! Offline stand-in for `bytes`: a cheaply cloneable, immutable byte
//! buffer. Cloning shares the backing storage (refcount bump only), which
//! the workspace relies on to model zero-copy transfer of bulk kernel IO.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

impl Bytes {
    pub const fn new() -> Self {
        Self {
            repr: Repr::Static(&[]),
        }
    }

    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Self {
            repr: Repr::Static(bytes),
        }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            repr: Repr::Shared(Arc::from(data)),
        }
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            repr: Repr::Shared(Arc::from(v)),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let b = Bytes::from(vec![1u8; 1024]);
        let c = b.clone();
        assert_eq!(b.as_ptr(), c.as_ptr());
        assert_eq!(b, c);
    }

    #[test]
    fn static_roundtrip() {
        let b = Bytes::from_static(b"xy");
        assert_eq!(&b[..], b"xy");
        assert_eq!(b.clone().as_ptr(), b.as_ptr());
    }

    #[test]
    fn vec_roundtrip() {
        let v = vec![3u8, 1, 4];
        let b: Bytes = v.clone().into();
        assert_eq!(b.to_vec(), v);
        assert_eq!(b.len(), 3);
    }
}
