//! Property tests for Slate's core mechanisms: the task queue never drops
//! or duplicates a block under any concurrency or retreat schedule; the
//! grid transformation is an exact cover matching the div/mod semantics for
//! every grid shape and task size; the dispatch kernel survives arbitrary
//! resize storms; the partitioner always produces a disjoint cover; and the
//! classification/policy layer is total and consistent.

use proptest::prelude::*;
use slate_core::classify::{classify, WorkloadClass};
use slate_core::dispatch::Dispatcher;
use slate_core::error::SlateError;
use slate_core::partition::partition;
use slate_core::policy::should_corun;
use slate_core::queue::TaskQueue;
use slate_core::transform::TransformedKernel;
use slate_gpu_sim::buffer::GpuBuffer;
use slate_gpu_sim::device::{DeviceConfig, SmRange};
use slate_gpu_sim::perf::KernelPerf;
use slate_kernels::grid::{BlockCoord, GridDim};
use slate_kernels::kernel::GpuKernel;
use slate_kernels::workload::Intensity;
use std::sync::Arc;

/// Kernel that counts per-block executions.
struct Counter {
    grid: GridDim,
    hits: Arc<GpuBuffer>,
}

impl Counter {
    fn new(grid: GridDim) -> (Arc<Self>, Arc<GpuBuffer>) {
        let hits = Arc::new(GpuBuffer::new(grid.total_blocks() as usize * 4));
        (
            Arc::new(Self {
                grid,
                hits: hits.clone(),
            }),
            hits,
        )
    }
}

impl GpuKernel for Counter {
    fn name(&self) -> &str {
        "counter"
    }
    fn grid(&self) -> GridDim {
        self.grid
    }
    fn perf(&self) -> KernelPerf {
        KernelPerf::synthetic("counter", 100.0, 4.0)
    }
    fn run_block(&self, b: BlockCoord) {
        assert!(b.x < self.grid.x && b.y < self.grid.y);
        self.hits.fetch_add_u32(self.grid.flat_of(b) as usize, 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequential pulls tile [0, total) exactly once, any task size.
    #[test]
    fn queue_tiles_exactly(total in 0u64..50_000, task in 1u32..500) {
        let q = TaskQueue::new(total, task);
        let mut next = 0u64;
        while let Some(t) = q.pull() {
            prop_assert_eq!(t.start, next);
            prop_assert!(t.len >= 1);
            prop_assert!(t.len <= task);
            next += t.len as u64;
        }
        prop_assert_eq!(next, total);
        prop_assert!(q.drained());
        prop_assert_eq!(q.pull_count(), total.div_ceil(task.max(1) as u64));
    }

    /// Concurrent pulls from many threads partition the range with no gap
    /// and no overlap.
    #[test]
    fn queue_concurrent_partition(total in 1u64..30_000, task in 1u32..100,
                                  threads in 2usize..8) {
        let q = Arc::new(TaskQueue::new(total, task));
        let mut handles = Vec::new();
        for _ in 0..threads {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                let mut mine = Vec::new();
                while let Some(t) = q.pull() {
                    mine.push((t.start, t.len));
                }
                mine
            }));
        }
        let mut all: Vec<(u64, u32)> =
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        let mut next = 0u64;
        for (start, len) in all {
            prop_assert_eq!(start, next);
            next += len as u64;
        }
        prop_assert_eq!(next, total);
    }

    /// Resuming from any progress point covers exactly the remainder.
    #[test]
    fn queue_resume_covers_remainder(total in 1u64..20_000, task in 1u32..64,
                                     cut_frac in 0.0..1.0f64) {
        let cut = (total as f64 * cut_frac) as u64;
        let q = TaskQueue::with_progress(cut, total, task);
        let mut covered = 0u64;
        while let Some(t) = q.pull() {
            prop_assert!(t.start >= cut);
            covered += t.len as u64;
        }
        prop_assert_eq!(covered, total - cut);
    }

    /// The transformation executes every block of any 2-D grid exactly once
    /// for any task size, and the incremental index math agrees with the
    /// canonical div/mod mapping (checked inside Counter::run_block).
    #[test]
    fn transform_exact_cover(gx in 1u32..200, gy in 1u32..60, task in 1u32..64) {
        let grid = GridDim::d2(gx, gy);
        let (k, hits) = Counter::new(grid);
        let t = TransformedKernel::new(k);
        let q = TaskQueue::new(t.slate_max(), task);
        while let Some(task) = q.pull() {
            t.run_task(task);
        }
        for i in 0..grid.total_blocks() {
            prop_assert_eq!(hits.load_u32(i as usize), 1, "block {}", i);
        }
    }

    /// The remapped `blockIdx` the user body sees is a *bijection* onto
    /// the original 2-D grid: executing the flat queue yields every
    /// in-grid coordinate exactly once, and the reconstructed coordinate
    /// of flat index `i` round-trips through `flat_of`/`coord_of`. This is
    /// the semantics-preservation claim of the K(B,T) → K*(B*,T)
    /// transformation (paper §III-A), stated as a property.
    #[test]
    fn transform_blockidx_is_a_bijection(gx in 1u32..180, gy in 1u32..50, task in 1u32..48) {
        struct Probe {
            grid: GridDim,
            seen: std::sync::Mutex<Vec<BlockCoord>>,
        }
        impl GpuKernel for Probe {
            fn name(&self) -> &str { "probe" }
            fn grid(&self) -> GridDim { self.grid }
            fn perf(&self) -> KernelPerf { KernelPerf::synthetic("probe", 1.0, 0.0) }
            fn run_block(&self, b: BlockCoord) {
                self.seen.lock().unwrap().push(b);
            }
        }
        let grid = GridDim::d2(gx, gy);
        let p = Arc::new(Probe { grid, seen: std::sync::Mutex::new(Vec::new()) });
        let t = TransformedKernel::new(p.clone());
        // The user body sees the original gridDim, untouched.
        prop_assert_eq!(t.grid(), grid);
        let q = TaskQueue::new(t.slate_max(), task);
        while let Some(task) = q.pull() {
            t.run_task(task);
        }
        let seen = p.seen.lock().unwrap();
        // Surjective with the right cardinality: |seen| = |grid|, every
        // coordinate in-grid, and the flat images tile [0, total) exactly
        // — together, a bijection.
        prop_assert_eq!(seen.len() as u64, grid.total_blocks());
        let mut flats: Vec<u64> = Vec::with_capacity(seen.len());
        for b in seen.iter() {
            prop_assert!(b.x < grid.x && b.y < grid.y, "out-of-grid coord {:?}", b);
            let flat = grid.flat_of(*b);
            // coord_of inverts flat_of on every reconstructed coordinate.
            prop_assert_eq!(grid.coord_of(flat), *b);
            flats.push(flat);
        }
        flats.sort_unstable();
        for (i, f) in flats.iter().enumerate() {
            prop_assert_eq!(*f, i as u64, "flat image must tile the grid");
        }
    }

    /// The dispatch kernel completes every block exactly once under an
    /// arbitrary schedule of resizes to arbitrary ranges.
    #[test]
    fn dispatch_survives_resize_storm(gx in 10u32..150, gy in 1u32..20,
                                      task in 1u32..32,
                                      cuts in prop::collection::vec((0u32..4, 0u32..4), 0..6)) {
        let device = DeviceConfig::tiny(4);
        let grid = GridDim::d2(gx, gy);
        let (k, hits) = Counter::new(grid);
        let d = Dispatcher::new(device, TransformedKernel::new(k), task, SmRange::all(4));
        let h = d.handle();
        let storm = std::thread::spawn(move || {
            for (a, b) in cuts {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                h.resize(SmRange::new(lo, hi));
                std::thread::yield_now();
            }
        });
        let out = d.run();
        storm.join().unwrap();
        prop_assert_eq!(out.blocks, grid.total_blocks());
        for i in 0..grid.total_blocks() {
            prop_assert_eq!(hits.load_u32(i as usize), 1, "block {}", i);
        }
    }

    /// The partitioner always yields two disjoint, covering, non-empty
    /// ranges for any demands on any device size >= 2.
    #[test]
    fn partition_is_disjoint_cover(da in 0u32..100, db in 0u32..100, sms in 2u32..64) {
        let mut cfg = DeviceConfig::titan_xp();
        cfg.num_sms = sms;
        let p = partition(&cfg, da, db);
        prop_assert!(!p.a.overlaps(&p.b));
        prop_assert_eq!(p.a.len() + p.b.len(), sms);
        prop_assert_eq!(p.a.lo, 0);
        prop_assert_eq!(p.b.hi, sms - 1);
        prop_assert!(!p.a.is_empty() && !p.b.is_empty());
    }

    /// Every error variant — including the fault-tolerance additions
    /// `Timeout`, `KernelFault`, and `ShuttingDown` — survives a wire
    /// roundtrip with arbitrary payloads.
    #[test]
    fn wire_roundtrip_all_variants(variant in 0usize..9, num in 0u64..u64::MAX,
                                   msg in "[ -~]{0,60}") {
        let e = match variant {
            0 => SlateError::OutOfMemory { requested: num },
            1 => SlateError::InvalidPointer { ptr: num },
            2 => SlateError::Launch(msg.clone()),
            3 => SlateError::Pragma(msg.clone()),
            4 => SlateError::Disconnected,
            5 => SlateError::Timeout { elapsed_ms: num },
            6 => SlateError::KernelFault(msg.clone()),
            7 => SlateError::ShuttingDown,
            _ => SlateError::Other(msg.clone()),
        };
        let back = SlateError::from_wire(&e.to_wire());
        prop_assert_eq!(&back, &e);
        // Transience is stable across the wire.
        prop_assert_eq!(back.is_transient(), e.is_transient());
    }

    /// Classification is total, memory-prioritized, and policy decisions
    /// are symmetric under the closure.
    #[test]
    fn classify_and_policy_consistent(c in 0usize..3, m in 0usize..3) {
        let lv = [Intensity::Low, Intensity::Med, Intensity::High];
        let class = classify(lv[c], lv[m]);
        match lv[m] {
            Intensity::High => prop_assert_eq!(class, WorkloadClass::HM),
            Intensity::Med => prop_assert_eq!(class, WorkloadClass::MM),
            Intensity::Low => prop_assert!(matches!(
                class,
                WorkloadClass::LC | WorkloadClass::MC | WorkloadClass::HC
            )),
        }
        for &other in &WorkloadClass::ALL {
            prop_assert_eq!(should_corun(class, other), should_corun(other, class));
        }
    }
}
