//! Structural validation of emitted traces against a schema.
//!
//! CI regenerates the golden trace on every run and validates it here
//! before uploading the artifact, so a malformed trace (a track without
//! a name, a slice that travels backwards in time, a migration arrow
//! with no arrival) fails the build instead of failing silently inside a
//! viewer. The validator parses the emitted JSON back through the
//! vendored [`serde::parse`] — it checks the *bytes*, not the in-memory
//! [`Trace`](super::Trace) that produced them.

use serde::{Deserialize, JsonValue};
use std::collections::{BTreeMap, BTreeSet};

/// Structural minimums (and escape hatches) a trace must satisfy. The
/// checked-in CI schema (`crates/core/tests/data/trace_schema.json`)
/// instantiates this for the golden fixtures; a default schema imposes
/// only the always-on invariants (monotonic timestamps, well-formed
/// events, no orphan flows, no overlapping slices).
#[derive(Debug, Clone, Default, PartialEq, Deserialize)]
pub struct TraceSchema {
    /// Minimum distinct processes (devices) with a `process_name`.
    #[serde(default)]
    pub min_processes: u64,
    /// Minimum named tracks (`thread_name` metadata events).
    #[serde(default)]
    pub min_tracks: u64,
    /// Minimum complete (`X`) slices.
    #[serde(default)]
    pub min_slices: u64,
    /// Minimum counter (`C`) samples.
    #[serde(default)]
    pub min_counter_samples: u64,
    /// Minimum instant (`i`) events.
    #[serde(default)]
    pub min_instants: u64,
    /// Minimum flow (`s`/`f`) pairs.
    #[serde(default)]
    pub min_flows: u64,
    /// Permit non-monotonic data-event timestamps (off by default).
    #[serde(default)]
    pub allow_unsorted_ts: bool,
    /// Permit unpaired flow endpoints (off by default).
    #[serde(default)]
    pub allow_orphan_flows: bool,
    /// Permit overlapping slices within one track (off by default).
    #[serde(default)]
    pub allow_overlapping_slices: bool,
}

impl TraceSchema {
    /// Parses a schema from its JSON text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = serde::parse(text).map_err(|e| format!("schema: {e:?}"))?;
        Self::deserialize_json(&v).map_err(|e| format!("schema: {e:?}"))
    }
}

/// What [`validate`] counted while checking.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Total events, metadata included.
    pub events: usize,
    /// Distinct processes carrying a `process_name`.
    pub processes: usize,
    /// Named tracks (`thread_name` events).
    pub tracks: usize,
    /// Complete (`X`) slices.
    pub slices: usize,
    /// Counter samples.
    pub counters: usize,
    /// Instant events.
    pub instants: usize,
    /// Matched flow pairs.
    pub flows: usize,
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} events: {} processes, {} tracks, {} slices, {} counters, {} instants, {} flows",
            self.events,
            self.processes,
            self.tracks,
            self.slices,
            self.counters,
            self.instants,
            self.flows
        )
    }
}

fn obj<'a>(v: &'a JsonValue, what: &str) -> Result<&'a [(String, JsonValue)], String> {
    match v {
        JsonValue::Obj(fields) => Ok(fields),
        _ => Err(format!("{what}: expected an object")),
    }
}

fn get<'a>(fields: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn str_field<'a>(
    fields: &'a [(String, JsonValue)],
    key: &str,
    at: usize,
) -> Result<&'a str, String> {
    match get(fields, key) {
        Some(JsonValue::Str(s)) => Ok(s),
        Some(_) => Err(format!("event {at}: field `{key}` is not a string")),
        None => Err(format!("event {at}: missing field `{key}`")),
    }
}

fn u64_field(fields: &[(String, JsonValue)], key: &str, at: usize) -> Result<u64, String> {
    match get(fields, key) {
        Some(JsonValue::Num(n)) => n
            .parse::<u64>()
            .map_err(|_| format!("event {at}: field `{key}` = {n} is not a non-negative integer")),
        Some(_) => Err(format!("event {at}: field `{key}` is not a number")),
        None => Err(format!("event {at}: missing field `{key}`")),
    }
}

/// Validates trace JSON text against `schema`, returning what it
/// counted. Checks, in order: document shape (`traceEvents` array of
/// objects with `name`/`cat`/`ph`/`ts`/`pid`/`tid`), globally
/// non-decreasing data-event timestamps, per-track slice packing (each
/// `X` slice starts at or after the previous one on its track ended),
/// flow pairing (every flow id has exactly one `s` and one `f`, arrival
/// not before departure), named tracks for every slice-bearing track and
/// a `process_name` for every process, numeric counter samples, and
/// finally the schema minimums.
pub fn validate(text: &str, schema: &TraceSchema) -> Result<TraceStats, String> {
    let doc = serde::parse(text).map_err(|e| format!("trace is not valid JSON: {e:?}"))?;
    let top = obj(&doc, "trace document")?;
    let events = match get(top, "traceEvents") {
        Some(JsonValue::Arr(events)) => events,
        _ => return Err("trace document: missing `traceEvents` array".into()),
    };

    let mut stats = TraceStats {
        events: events.len(),
        ..TraceStats::default()
    };
    let mut named_processes: BTreeSet<u64> = BTreeSet::new();
    let mut named_tracks: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut slice_tracks: BTreeSet<(u64, u64)> = BTreeSet::new();
    // Per-track end of the last slice, for the packing check.
    let mut track_end: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    // Flow id → (starts seen, finishes seen, start ts, last finish ts).
    let mut flows: BTreeMap<String, (usize, usize, u64, u64)> = BTreeMap::new();
    let mut last_ts: Option<u64> = None;

    for (at, ev) in events.iter().enumerate() {
        let fields = obj(ev, &format!("event {at}"))?;
        let ph = str_field(fields, "ph", at)?;
        str_field(fields, "name", at)?;
        str_field(fields, "cat", at)?;
        let ts = u64_field(fields, "ts", at)?;
        let pid = u64_field(fields, "pid", at)?;
        let tid = u64_field(fields, "tid", at)?;

        if ph == "M" {
            let name = str_field(fields, "name", at)?;
            let args =
                get(fields, "args").ok_or_else(|| format!("event {at}: metadata without args"))?;
            let args = obj(args, &format!("event {at} args"))?;
            str_field(args, "name", at)
                .map_err(|_| format!("event {at}: metadata args without a string `name`"))?;
            match name {
                "process_name" => {
                    named_processes.insert(pid);
                }
                "thread_name" => {
                    named_tracks.insert((pid, tid));
                }
                other => return Err(format!("event {at}: unknown metadata kind `{other}`")),
            }
            continue;
        }

        // Data events: global timestamp monotonicity (emission order).
        if let Some(prev) = last_ts {
            if ts < prev && !schema.allow_unsorted_ts {
                return Err(format!(
                    "event {at}: timestamp {ts} goes backwards (previous data event at {prev})"
                ));
            }
        }
        last_ts = Some(last_ts.unwrap_or(0).max(ts));

        match ph {
            "X" => {
                stats.slices += 1;
                let dur = u64_field(fields, "dur", at)?;
                let key = (pid, tid);
                slice_tracks.insert(key);
                if let Some(end) = track_end.get(&key) {
                    if ts < *end && !schema.allow_overlapping_slices {
                        return Err(format!(
                            "event {at}: slice on track {pid}:{tid} starts at {ts}, \
                             before the previous slice on that track ended at {end}"
                        ));
                    }
                }
                let end = track_end.entry(key).or_insert(0);
                *end = (*end).max(ts + dur);
            }
            "i" => {
                stats.instants += 1;
            }
            "C" => {
                stats.counters += 1;
                let args = get(fields, "args")
                    .ok_or_else(|| format!("event {at}: counter without args"))?;
                let args = obj(args, &format!("event {at} args"))?;
                u64_field(args, "value", at)
                    .map_err(|_| format!("event {at}: counter without a numeric `value`"))?;
            }
            "s" | "f" => {
                let id = str_field(fields, "id", at)?.to_string();
                let e = flows.entry(id).or_insert((0, 0, 0, 0));
                if ph == "s" {
                    e.0 += 1;
                    e.2 = ts;
                } else {
                    e.1 += 1;
                    e.3 = ts;
                }
            }
            other => return Err(format!("event {at}: unsupported phase `{other}`")),
        }
    }

    if !schema.allow_orphan_flows {
        for (id, (starts, finishes, start_ts, finish_ts)) in &flows {
            if *starts != 1 || *finishes != 1 {
                return Err(format!(
                    "flow {id}: {starts} start(s) and {finishes} finish(es); want exactly one of each"
                ));
            }
            if finish_ts < start_ts {
                return Err(format!(
                    "flow {id}: arrives at {finish_ts}, before it departs at {start_ts}"
                ));
            }
        }
    }
    stats.flows = flows.len();
    stats.processes = named_processes.len();
    stats.tracks = named_tracks.len();

    for key in &slice_tracks {
        if !named_tracks.contains(key) {
            return Err(format!(
                "track {}:{} carries slices but has no thread_name",
                key.0, key.1
            ));
        }
        if !named_processes.contains(&key.0) {
            return Err(format!(
                "process {} carries slices but has no process_name",
                key.0
            ));
        }
    }

    let checks: [(&str, u64, u64); 6] = [
        ("processes", stats.processes as u64, schema.min_processes),
        ("tracks", stats.tracks as u64, schema.min_tracks),
        ("slices", stats.slices as u64, schema.min_slices),
        (
            "counter samples",
            stats.counters as u64,
            schema.min_counter_samples,
        ),
        ("instants", stats.instants as u64, schema.min_instants),
        ("flows", stats.flows as u64, schema.min_flows),
    ];
    for (what, got, want) in checks {
        if got < want {
            return Err(format!("schema: {got} {what}, schema requires ≥ {want}"));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_backwards_time_and_overlap() {
        let schema = TraceSchema::default();
        let bad_ts = r#"{"traceEvents":[
{"name":"a","cat":"c","ph":"i","ts":10,"pid":0,"tid":0,"s":"t"},
{"name":"b","cat":"c","ph":"i","ts":5,"pid":0,"tid":0,"s":"t"}
]}"#;
        assert!(validate(bad_ts, &schema).unwrap_err().contains("backwards"));
        let overlap = r#"{"traceEvents":[
{"name":"process_name","cat":"__metadata","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"d"}},
{"name":"thread_name","cat":"__metadata","ph":"M","ts":0,"pid":0,"tid":1,"args":{"name":"t"}},
{"name":"a","cat":"c","ph":"X","ts":0,"dur":10,"pid":0,"tid":1},
{"name":"b","cat":"c","ph":"X","ts":5,"dur":10,"pid":0,"tid":1}
]}"#;
        assert!(validate(overlap, &schema)
            .unwrap_err()
            .contains("before the previous"));
    }

    #[test]
    fn schema_minimums_bite() {
        let mut schema = TraceSchema {
            min_slices: 1,
            ..TraceSchema::default()
        };
        let empty = "{\"traceEvents\":[\n]}";
        assert!(validate(empty, &schema).unwrap_err().contains("schema"));
        schema.min_slices = 0;
        let stats = validate(empty, &schema).expect("empty trace is structurally fine");
        assert_eq!(stats.events, 0);
    }

    #[test]
    fn schema_parses_with_defaults() {
        let s = TraceSchema::from_json("{\"min_slices\": 3}").expect("parses");
        assert_eq!(s.min_slices, 3);
        assert_eq!(s.min_processes, 0);
        assert!(!s.allow_unsorted_ts);
    }
}
