//! Property tests for the SLO preemption bound.
//!
//! Across seeds and arrival mixes, every latency-critical arrival must be
//! dispatched — directly, or by preempting a best-effort resident — within
//! `preempt_bound_us` logical ticks, and the whole arbitration must be
//! deterministic: feeding the identical event sequence twice yields
//! byte-identical transcripts.
//!
//! The generated mixes keep the bound *provable*: best-effort kernels are
//! long (far past the bound — only preemption can clear them in time) and
//! run one at a time, while latency-critical service times are short
//! enough that even a full queue of them drains inside the bound. Any
//! missed or late preemption therefore shows up as a hard violation, not
//! as noise.

use proptest::prelude::*;
use slate_core::arbiter::replay::transcript;
use slate_core::arbiter::{ArbiterConfig, ArbiterCore, Command, Event, EventLog};
use slate_core::WorkloadClass;
use slate_gpu_sim::device::DeviceConfig;
use slate_kernels::workload::SloClass;
use std::collections::BTreeMap;

/// The bound under test, logical µs.
const BOUND_US: u64 = 50_000;

/// Seeded xorshift64, the workspace's PRNG idiom.
fn xorshift64(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// One generated latency-critical arrival.
#[derive(Debug, Clone)]
struct LcArrival {
    at: u64,
    /// Service time, µs — short by construction.
    dur: u64,
}

/// A generated mix: one best-effort session looping long kernels under a
/// burst of latency-critical arrivals.
#[derive(Debug, Clone)]
struct Mix {
    /// Best-effort kernel duration, µs — far past the bound.
    be_dur: u64,
    lc: Vec<LcArrival>,
}

fn gen_mix(seed: u64) -> Mix {
    let mut s = seed | 1;
    let n_lc = 2 + (xorshift64(&mut s) % 5) as usize; // 2..=6
    let mut lc = Vec::with_capacity(n_lc);
    for _ in 0..n_lc {
        lc.push(LcArrival {
            at: 1_000 + xorshift64(&mut s) % 200_000,
            dur: 1_000 + xorshift64(&mut s) % 4_000,
        });
    }
    lc.sort_by_key(|a| a.at);
    Mix {
        be_dur: 150_000 + xorshift64(&mut s) % 100_000,
        lc,
    }
}

/// Drives the mix through a core: the best-effort session (id 0, leases
/// 100, 101, ...) launches a fresh long kernel the moment the previous one
/// drains; each latency-critical session (ids 1.., leases 1..) arrives at
/// its seeded tick. Kernel durations are charged from *dispatch*, so a
/// preempted best-effort kernel simply finishes late (the retreat's lost
/// progress is the backend's concern, not the arbiter's). Returns the
/// recorded log.
fn drive(mix: &Mix) -> EventLog {
    let mut core = ArbiterCore::new(
        DeviceConfig::tiny(8),
        ArbiterConfig {
            preempt_bound_us: Some(BOUND_US),
            ..ArbiterConfig::default()
        },
    );
    core.start_recording();

    // (tick, events) queue, processed in tick order. Finishes computed on
    // the fly from dispatch commands.
    let mut pending: BTreeMap<u64, Vec<Event>> = BTreeMap::new();
    let mut dur_of: BTreeMap<u64, u64> = BTreeMap::new(); // lease -> dur
    let mut be_lease = 100u64;
    pending.entry(0).or_default().extend([
        Event::SloArrival {
            session: 0,
            class: SloClass::BestEffort,
        },
        Event::SessionOpened { session: 0 },
        Event::KernelReady {
            session: 0,
            lease: be_lease,
            class: WorkloadClass::MM,
            sm_demand: 8,
            pinned_solo: false,
            deadline_ms: None,
        },
    ]);
    dur_of.insert(be_lease, mix.be_dur);
    for (i, a) in mix.lc.iter().enumerate() {
        let session = 1 + i as u64;
        let lease = 1 + i as u64;
        pending.entry(a.at).or_default().extend([
            Event::SloArrival {
                session,
                class: SloClass::LatencyCritical,
            },
            Event::SessionOpened { session },
            Event::KernelReady {
                session,
                lease,
                class: WorkloadClass::HM,
                sm_demand: 4,
                pinned_solo: false,
                deadline_ms: None,
            },
        ]);
        dur_of.insert(lease, a.dur);
    }

    let mut lc_dispatched = 0usize;
    let mut guard = 0;
    while let Some((&at, _)) = pending.iter().next() {
        guard += 1;
        assert!(guard < 10_000, "runaway event loop");
        let events = pending.remove(&at).unwrap();
        for c in core.feed(at, &events) {
            if let Command::Dispatch { lease, .. } = c {
                let fin = at + dur_of[&lease];
                pending
                    .entry(fin)
                    .or_default()
                    .push(Event::KernelFinished { lease, ok: true });
                if lease < 100 {
                    lc_dispatched += 1;
                } else if lc_dispatched < mix.lc.len() {
                    // The best-effort loop relaunches the moment it drains
                    // — until every latency-critical arrival has been
                    // served, which bounds the run.
                    be_lease += 1;
                    dur_of.insert(be_lease, mix.be_dur);
                    pending.entry(fin).or_default().push(Event::KernelReady {
                        session: 0,
                        lease: be_lease,
                        class: WorkloadClass::MM,
                        sm_demand: 8,
                        pinned_solo: false,
                        deadline_ms: None,
                    });
                }
            }
        }
    }
    core.take_log().expect("recording was started")
}

/// Tick of the batch that dispatched `lease` (directly or behind a
/// preemption), if any.
fn dispatch_tick(log: &EventLog, lease: u64) -> Option<u64> {
    for b in &log.batches {
        for c in &b.commands {
            if matches!(c, Command::Dispatch { lease: l, .. } if *l == lease) {
                return Some(b.at);
            }
        }
    }
    None
}

/// Tick at which `lease`'s `KernelReady` was fed.
fn ready_tick(log: &EventLog, lease: u64) -> Option<u64> {
    for b in &log.batches {
        for e in &b.events {
            if matches!(e, Event::KernelReady { lease: l, .. } if *l == lease) {
                return Some(b.at);
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every latency-critical arrival is served within the bound, whatever
    /// the seed: the best-effort kernel is several times longer than the
    /// bound, so only the preemption path can make this hold.
    #[test]
    fn latency_critical_arrivals_are_served_within_the_bound(seed in any::<u64>()) {
        let mix = gen_mix(seed);
        let log = drive(&mix);
        for (i, _) in mix.lc.iter().enumerate() {
            let lease = 1 + i as u64;
            let ready = ready_tick(&log, lease)
                .expect("every generated arrival reaches the core");
            let dispatched = dispatch_tick(&log, lease).unwrap_or_else(|| {
                panic!("lc lease {lease} (seed {seed:#x}) was never dispatched:\n{}",
                       transcript(&log.batches))
            });
            prop_assert!(
                dispatched - ready <= BOUND_US,
                "lc lease {} waited {} µs (bound {}), seed {:#x}",
                lease, dispatched - ready, BOUND_US, seed
            );
        }
    }

    /// Double-run determinism: identical seeds produce byte-identical
    /// transcripts — the property the golden fixtures and crash-recovery
    /// replay both lean on.
    #[test]
    fn double_runs_are_byte_identical(seed in any::<u64>()) {
        let a = drive(&gen_mix(seed));
        let b = drive(&gen_mix(seed));
        prop_assert_eq!(transcript(&a.batches), transcript(&b.batches));
    }
}

/// The preemption path itself (not just fast dispatch) is exercised:
/// across a fixed seed range, some run preempts.
#[test]
fn the_mixes_exercise_preemption() {
    let mut preempts = 0usize;
    for seed in 0..16u64 {
        let log = drive(&gen_mix(0xC0FFEE ^ (seed << 8)));
        preempts += log
            .batches
            .iter()
            .flat_map(|b| &b.commands)
            .filter(|c| matches!(c, Command::Preempt { .. }))
            .count();
    }
    assert!(preempts > 0, "no mix ever hit the preemption path");
}
