//! Offline stand-in for `parking_lot`, layered over `std::sync`.
//!
//! Exposes the subset this workspace uses — `Mutex` / `MutexGuard` /
//! `Condvar` with parking_lot's non-poisoning API (`lock()` returns the
//! guard directly, `Condvar::wait` takes `&mut MutexGuard`). Poisoned std
//! locks are recovered transparently: a panic while holding a lock does not
//! wedge every later locker, matching parking_lot semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can move the std guard out and back in
    // without dropping the wrapper.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(_) => panic!("parking_lot stub: poisoned mutex in get_mut"),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
