//! Pairing explorer: compare CUDA, MPS and Slate on any benchmark pairing.
//!
//! ```text
//! cargo run --release --example pairing_explorer            # default BS RG
//! cargo run --release --example pairing_explorer -- GS RG
//! cargo run --release --example pairing_explorer -- MM BS --scale 4
//! ```
//!
//! Prints each application's time under the three runtimes, the ANTT
//! normalized to the CUDA solo baseline, and what Slate decided (corun with
//! partition sizes, or consecutive solo runs). With `--gantt`, also renders
//! the SM-occupancy timeline of the Slate run, making the spatial partition
//! and the dynamic resizing visible.

use slate_baselines::{CudaRuntime, MpsRuntime, Runtime};
use slate_core::classify::WorkloadClass;
use slate_core::partition::partition;
use slate_core::policy::should_corun;
use slate_core::profile::profile_kernel;
use slate_core::SlateRuntime;
use slate_gpu_sim::device::DeviceConfig;
use slate_kernels::workload::Benchmark;

fn parse_bench(s: &str) -> Option<Benchmark> {
    Benchmark::ALL
        .into_iter()
        .find(|b| b.abbrev().eq_ignore_ascii_case(s))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut names: Vec<&str> = Vec::new();
    let mut scale = 8u32;
    let mut gantt = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--scale" {
            scale = it.next().and_then(|v| v.parse().ok()).unwrap_or(8);
        } else if a == "--gantt" {
            gantt = true;
        } else {
            names.push(a);
        }
    }
    let (a, b) = match names.as_slice() {
        [] => (Benchmark::BS, Benchmark::RG),
        [x, y] => match (parse_bench(x), parse_bench(y)) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                eprintln!("unknown benchmark; choose from BS GS MM RG TR");
                std::process::exit(2);
            }
        },
        _ => {
            eprintln!("usage: pairing_explorer [A B] [--scale N]");
            std::process::exit(2);
        }
    };

    let cfg = DeviceConfig::titan_xp();
    let apps = [a.app().scaled_down(scale), b.app().scaled_down(scale)];

    // What will Slate decide? Profile, classify, consult the policy.
    let profs: Vec<_> = apps
        .iter()
        .map(|app| profile_kernel(&cfg, &app.perf, app.blocks_per_launch))
        .collect();
    let classes: Vec<WorkloadClass> = profs.iter().map(|p| p.class).collect();
    println!(
        "{}: {} ({:.1} GFLOP/s, {:.1} GB/s, SM demand {})",
        a.abbrev(),
        classes[0],
        profs[0].gflops,
        profs[0].bandwidth_gbs,
        profs[0].sm_demand
    );
    println!(
        "{}: {} ({:.1} GFLOP/s, {:.1} GB/s, SM demand {})",
        b.abbrev(),
        classes[1],
        profs[1].gflops,
        profs[1].bandwidth_gbs,
        profs[1].sm_demand
    );
    if should_corun(classes[0], classes[1]) {
        let part = partition(&cfg, profs[0].sm_demand, profs[1].sm_demand);
        println!(
            "policy: CORUN — partition {} gets SMs {}..={}, {} gets SMs {}..={}\n",
            a.abbrev(),
            part.a.lo,
            part.a.hi,
            b.abbrev(),
            part.b.lo,
            part.b.hi
        );
    } else {
        println!("policy: SOLO — kernels run consecutively, each on all 30 SMs\n");
    }

    let cuda = CudaRuntime::new(cfg.clone());
    let mps = MpsRuntime::new(cfg.clone());
    let slate = SlateRuntime::new(cfg.clone());
    let solos = [cuda.solo_time(&apps[0]), cuda.solo_time(&apps[1])];

    println!(
        "{:<8} {:>10} {:>10} {:>8}",
        "runtime",
        format!("{} (s)", a.abbrev()),
        format!("{} (s)", b.abbrev()),
        "ANTT"
    );
    let mut antts = Vec::new();
    let mut slate_trace = None;
    for rt in [&cuda as &dyn Runtime, &mps, &slate] {
        let out = rt.run(&apps);
        let antt = out.antt(&solos);
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>8.3}",
            rt.label(),
            out.apps[0].app_time_s,
            out.apps[1].app_time_s,
            antt
        );
        antts.push(antt);
        if rt.label() == "Slate" {
            slate_trace = Some(out.trace);
        }
    }
    println!(
        "\nSlate vs MPS: {:+.1}%   Slate vs CUDA: {:+.1}%",
        (antts[1] / antts[2] - 1.0) * 100.0,
        (antts[0] / antts[2] - 1.0) * 100.0
    );
    if gantt {
        let tr = slate_trace.unwrap();
        println!(
            "\nSlate schedule ({} resizes for {}, {} for {}):",
            tr.resizes(0),
            a.abbrev(),
            tr.resizes(1),
            b.abbrev()
        );
        println!("{}", tr.gantt(cfg.num_sms, 100));
    }
}
