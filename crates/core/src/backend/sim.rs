//! [`SimBackend`]: arbiter command execution over the fluid-rate
//! simulation engine.
//!
//! This is the execution substrate of the simulated
//! [`SlateRuntime`](crate::runtime::SlateRuntime): a dispatched lease is a
//! slice on the engine, a resize is the retreat/relaunch of §IV-C
//! (tear the slice down mid-flight, relaunch the remaining blocks on the
//! adjusted range), an eviction is a retreat with no relaunch. The runtime
//! drives the same engine through this type's inherent slice operations
//! ([`SimBackend::launch_slice`], [`SimBackend::resize_slice`]), so the
//! standalone trait path and the full scheduler exercise one
//! implementation of the retreat mechanics.

use super::{Backend, Completion, DeviceFault, DeviceHealth, WorkSpec};
use crate::arbiter::Command;
use slate_gpu_sim::device::{DeviceConfig, SmRange};
use slate_gpu_sim::engine::{Engine, Event, SliceId, SliceSpec};
use slate_gpu_sim::fault::{FaultKind, FaultPlan, FaultSite};
use slate_gpu_sim::metrics::SliceReport;
use slate_gpu_sim::perf::{ExecMode, KernelPerf};
use std::collections::{BTreeMap, VecDeque};

/// How to relaunch the remaining blocks after a retreat.
#[derive(Debug, Clone)]
pub struct RelaunchPlan {
    /// Perf profile of the relaunched slice.
    pub perf: KernelPerf,
    /// Execution mode of the relaunched slice.
    pub mode: ExecMode,
    /// Real blocks per batched launch: the relaunch batch count is
    /// `(remaining / blocks_per_batch).max(1)`. Use `u64::MAX` for an
    /// unbatched relaunch (batch 1).
    pub blocks_per_batch: u64,
}

/// What a [`SimBackend::resize_slice`] retreat found.
#[derive(Debug)]
pub enum ResizeOutcome {
    /// The slice had already completed — nothing to relaunch. The resize
    /// raced with the drain; callers fold this into their completion path.
    Completed(SliceReport),
    /// The remaining blocks were relaunched on the new range.
    Relaunched(SliceReport, SliceId),
}

/// Per-lease execution state.
struct SimLease {
    perf: KernelPerf,
    total: u64,
    task_size: u32,
    start: u64,
    /// Blocks completed by already-removed slices of this staging.
    executed: u64,
    /// The in-flight slice and the range it runs on.
    slice: Option<(SliceId, SmRange)>,
    finished: bool,
}

/// The simulation-engine execution backend.
pub struct SimBackend {
    engine: Engine,
    leases: BTreeMap<u64, SimLease>,
    done: VecDeque<Completion>,
    /// Current device health (the failure-domain model).
    health: DeviceHealth,
    /// Remaining outage, in ms of simulated time, for a flapping device.
    /// Zero while hard-lost: only [`DeviceFault::Restore`] recovers that.
    down_remaining_ms: u64,
    /// Remaining stall budget, in ms, consumed before engine time passes
    /// while degraded.
    stall_remaining_ms: u64,
    /// Seeded device-fault schedule; [`FaultSite::Device`] rules fire on
    /// each dispatch.
    device_plan: Option<FaultPlan>,
}

impl SimBackend {
    /// A backend over a fresh engine for `cfg`.
    pub fn new(cfg: DeviceConfig) -> Self {
        Self {
            engine: Engine::new(cfg),
            leases: BTreeMap::new(),
            done: VecDeque::new(),
            health: DeviceHealth::Healthy,
            down_remaining_ms: 0,
            stall_remaining_ms: 0,
            device_plan: None,
        }
    }

    /// Attaches a seeded device-fault schedule: every dispatch fires the
    /// plan's [`FaultSite::Device`] rules, injecting the scheduled loss,
    /// stall or flap.
    pub fn with_device_faults(mut self, plan: FaultPlan) -> Self {
        self.device_plan = Some(plan);
        self
    }

    /// Loses every in-flight lease to the device at its current progress.
    fn lose_in_flight(&mut self) {
        let casualties: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, l)| l.slice.is_some())
            .map(|(&lease, _)| lease)
            .collect();
        for lease in casualties {
            let l = self.leases.get_mut(&lease).expect("present");
            let (sid, _) = l.slice.take().expect("in flight");
            let rep = self.engine.remove_slice(sid);
            let l = self.leases.get_mut(&lease).expect("present");
            l.executed += rep.blocks_done;
            l.finished = true;
            self.done
                .push_back(Completion::device_lost(lease, l.start + l.executed));
        }
    }

    /// The underlying engine (timers, transfers, inspection).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the underlying engine. The simulated runtime
    /// drives its own transfer/timer bookkeeping through this while
    /// routing slice execution through the shared slice operations.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Starts a slice on the engine (a kernel launch).
    pub fn launch_slice(&mut self, spec: SliceSpec) -> Result<SliceId, String> {
        self.engine.add_slice(spec)
    }

    /// Removes a drained slice and returns its report.
    pub fn drain_slice(&mut self, id: SliceId) -> SliceReport {
        self.engine.remove_slice(id)
    }

    /// The dispatch-kernel retreat/relaunch (§IV-C): tears `slice` down
    /// mid-flight and, unless it turned out to be complete, relaunches the
    /// remaining blocks on `to` with `slateIdx` progress carried over.
    pub fn resize_slice(
        &mut self,
        slice: SliceId,
        to: SmRange,
        plan: &RelaunchPlan,
    ) -> ResizeOutcome {
        let rep = self.engine.remove_slice(slice);
        let remaining = rep.blocks_total.saturating_sub(rep.blocks_done);
        if remaining == 0 {
            return ResizeOutcome::Completed(rep);
        }
        let batch = (remaining / plan.blocks_per_batch).max(1) as u32;
        let id = self
            .engine
            .add_slice(SliceSpec {
                perf: plan.perf.clone(),
                sm_range: to,
                blocks: remaining,
                mode: plan.mode,
                extra_lead_s: 0.0,
                batch,
                tag: rep.tag,
            })
            .expect("relaunch must be valid");
        ResizeOutcome::Relaunched(rep, id)
    }

    /// Handles a `SliceDrained` engine event for a trait-managed lease.
    fn finish_drained(&mut self, sid: SliceId) {
        let Some((&lease, _)) = self
            .leases
            .iter()
            .find(|(_, l)| l.slice.map(|(id, _)| id) == Some(sid))
        else {
            return;
        };
        let rep = self.engine.remove_slice(sid);
        let l = self.leases.get_mut(&lease).expect("lease just found");
        l.executed += rep.blocks_done;
        l.slice = None;
        l.finished = true;
        let progress = l.start + l.executed;
        debug_assert_eq!(progress, l.total, "drained lease must cover the grid");
        self.done.push_back(Completion::drained(lease, progress));
    }
}

impl Backend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn device(&self) -> &DeviceConfig {
        self.engine.device()
    }

    fn stage(&mut self, lease: u64, spec: WorkSpec) {
        debug_assert!(
            self.leases
                .get(&lease)
                .is_none_or(|l| l.finished || l.slice.is_none()),
            "staging over an in-flight lease"
        );
        let perf = spec.kernel.inner().perf();
        self.leases.insert(
            lease,
            SimLease {
                perf,
                total: spec.total(),
                task_size: spec.task_size,
                start: spec.start,
                executed: 0,
                slice: None,
                finished: false,
            },
        );
    }

    fn apply(&mut self, cmd: &Command) {
        match cmd {
            Command::Dispatch { lease, range } => {
                // Each dispatch is one occurrence of the device fault
                // site — the scheduled loss/stall/flap (if any) lands
                // before the work does.
                if let Some(plan) = self.device_plan.as_mut() {
                    match plan.fire(FaultSite::Device, None) {
                        Some(FaultKind::DeviceLoss) => {
                            self.inject_device_fault(DeviceFault::Loss);
                        }
                        Some(FaultKind::DeviceStall { millis }) => {
                            self.inject_device_fault(DeviceFault::Degraded { millis });
                        }
                        Some(FaultKind::DeviceFlap { down_ms }) => {
                            self.inject_device_fault(DeviceFault::Flap { down_ms });
                        }
                        _ => {}
                    }
                }
                let Some(l) = self.leases.get(lease) else {
                    return;
                };
                if l.finished || l.slice.is_some() {
                    return; // duplicate dispatch: already running or done
                }
                if self.health == DeviceHealth::Lost {
                    // Dispatch into a dead device: the work is lost on
                    // arrival, at whatever progress it carried.
                    let l = self.leases.get_mut(lease).expect("present");
                    l.finished = true;
                    self.done
                        .push_back(Completion::device_lost(*lease, l.start + l.executed));
                    return;
                }
                let blocks = l.total - l.start;
                if blocks == 0 {
                    let l = self.leases.get_mut(lease).expect("present");
                    l.finished = true;
                    self.done.push_back(Completion::drained(*lease, l.total));
                    return;
                }
                let spec = SliceSpec {
                    perf: l.perf.clone(),
                    sm_range: *range,
                    blocks,
                    mode: ExecMode::SlateWorkers {
                        task_size: l.task_size,
                    },
                    extra_lead_s: 0.0,
                    batch: 1,
                    tag: *lease,
                };
                let id = self.launch_slice(spec).expect("dispatch must be valid");
                let l = self.leases.get_mut(lease).expect("present");
                l.slice = Some((id, *range));
            }
            Command::Resize { lease, range } => {
                let Some(l) = self.leases.get(lease) else {
                    return;
                };
                let Some((sid, cur)) = l.slice else {
                    return; // not resident (never dispatched or drained)
                };
                if cur == *range {
                    return;
                }
                let plan = RelaunchPlan {
                    perf: l.perf.clone(),
                    mode: ExecMode::SlateWorkers {
                        task_size: l.task_size,
                    },
                    blocks_per_batch: u64::MAX,
                };
                let outcome = self.resize_slice(sid, *range, &plan);
                let l = self.leases.get_mut(lease).expect("present");
                match outcome {
                    ResizeOutcome::Completed(rep) => {
                        l.executed += rep.blocks_done;
                        l.slice = None;
                        l.finished = true;
                        let progress = l.start + l.executed;
                        self.done.push_back(Completion::drained(*lease, progress));
                    }
                    ResizeOutcome::Relaunched(rep, id) => {
                        l.executed += rep.blocks_done;
                        l.slice = Some((id, *range));
                    }
                }
            }
            Command::Evict { lease } => {
                let Some(l) = self.leases.get(lease) else {
                    return;
                };
                if l.finished {
                    return;
                }
                if let Some((sid, _)) = l.slice {
                    let rep = self.engine.remove_slice(sid);
                    let l = self.leases.get_mut(lease).expect("present");
                    l.executed += rep.blocks_done;
                    l.slice = None;
                }
                let l = self.leases.get_mut(lease).expect("present");
                l.finished = true;
                self.done
                    .push_back(Completion::evicted(*lease, l.start + l.executed));
            }
            // Scheduling-internal commands have no execution-side effect.
            Command::PromoteStarved { .. }
            | Command::Preempt { .. }
            | Command::Reap { .. }
            | Command::RejectOverloaded { .. } => {}
        }
    }

    fn poll(&mut self) -> Option<Completion> {
        self.done.pop_front()
    }

    fn advance(&mut self, mut millis: u64) {
        if millis == 0 {
            return;
        }
        // An outage window (flap) passes before any device time: nothing
        // runs while down, and the device comes back once it drains.
        if self.health == DeviceHealth::Lost {
            if self.down_remaining_ms == 0 {
                return; // hard loss: time passes, the device stays dead
            }
            let waited = millis.min(self.down_remaining_ms);
            self.down_remaining_ms -= waited;
            millis -= waited;
            if self.down_remaining_ms == 0 {
                self.health = DeviceHealth::Healthy;
            }
            if millis == 0 {
                return;
            }
        }
        // A degraded device consumes its stall budget before engine time
        // passes — work survives but makes no progress meanwhile.
        if self.health == DeviceHealth::Degraded {
            let stalled = millis.min(self.stall_remaining_ms);
            self.stall_remaining_ms -= stalled;
            millis -= stalled;
            if self.stall_remaining_ms == 0 {
                self.health = DeviceHealth::Healthy;
            }
            if millis == 0 {
                return;
            }
        }
        let tid = self
            .engine
            .set_timer(self.engine.now() + millis as f64 / 1e3);
        loop {
            match self.engine.step() {
                Some((_, Event::Timer(t))) if t == tid => break,
                Some((_, Event::SliceDrained(sid))) => self.finish_drained(sid),
                Some(_) => {}
                None => break,
            }
        }
    }

    fn progress(&self, lease: u64) -> u64 {
        let Some(l) = self.leases.get(&lease) else {
            return 0;
        };
        let in_flight = l
            .slice
            .map(|(id, _)| self.engine.slice_report(id).blocks_done)
            .unwrap_or(0);
        l.start + l.executed + in_flight
    }

    fn held_range(&self, lease: u64) -> Option<SmRange> {
        self.leases
            .get(&lease)
            .and_then(|l| l.slice.map(|(_, r)| r))
    }

    fn is_functional(&self) -> bool {
        false
    }

    fn health(&self) -> DeviceHealth {
        self.health
    }

    fn inject_device_fault(&mut self, fault: DeviceFault) -> bool {
        match fault {
            DeviceFault::Loss => {
                self.lose_in_flight();
                self.health = DeviceHealth::Lost;
                self.down_remaining_ms = 0;
            }
            DeviceFault::Degraded { millis } => {
                if self.health != DeviceHealth::Lost {
                    self.health = DeviceHealth::Degraded;
                    self.stall_remaining_ms += millis;
                }
            }
            DeviceFault::Flap { down_ms } => {
                self.lose_in_flight();
                self.health = DeviceHealth::Lost;
                self.down_remaining_ms = down_ms.max(1);
            }
            DeviceFault::Restore => {
                self.health = DeviceHealth::Healthy;
                self.down_remaining_ms = 0;
                self.stall_remaining_ms = 0;
            }
        }
        true
    }

    fn drive_until(&mut self, lease: u64, timeout_ms: u64) -> Vec<Completion> {
        // Step the engine straight to the next drain instead of advancing
        // in 1 ms timer hops — simulated time is free, so the bound is a
        // simulated-seconds deadline rather than an iteration count.
        let mut seen = Vec::new();
        let deadline = self.engine.now() + timeout_ms as f64 / 1e3;
        loop {
            while let Some(c) = self.done.pop_front() {
                let hit = c.lease == lease;
                seen.push(c);
                if hit {
                    return seen;
                }
            }
            if self.engine.now() > deadline {
                return seen;
            }
            match self.engine.step() {
                Some((_, Event::SliceDrained(sid))) => self.finish_drained(sid),
                Some(_) => {}
                None => return seen, // idle: nothing will ever complete
            }
        }
    }
}
