//! BlackScholes (BS) — European option pricing, from the NVIDIA CUDA
//! samples.
//!
//! Each thread prices `OPT_PER_THREAD` options with the Black-Scholes
//! closed-form formula (call and put). The kernel streams three input
//! arrays and writes two output arrays with no inter-block reuse, which is
//! why the paper classifies it Med compute / Med memory (Table II:
//! 161.3 GFLOP/s, 401.5 GB/s) and why Slate's in-order execution does not
//! change its DRAM traffic. Its sensitivity in the paper is to *task size*:
//! with the default task size 10 Slate loses ~5% to load imbalance, with
//! task size 1 it beats CUDA by ~2% (paper §V-B, Fig. 5).

use crate::grid::{BlockCoord, GridDim};
use crate::kernel::GpuKernel;
use slate_gpu_sim::buffer::GpuBuffer;
use slate_gpu_sim::perf::KernelPerf;
use std::sync::Arc;

/// Threads per block, as in the CUDA sample.
pub const THREADS: u32 = 128;
/// Options priced per thread.
pub const OPT_PER_THREAD: u32 = 8;
/// Options covered by one block.
pub const OPT_PER_BLOCK: u32 = THREADS * OPT_PER_THREAD;

/// Paper problem size: 40 million options.
pub const PAPER_OPTIONS: u64 = 40_000_000;

/// Cumulative normal distribution, the polynomial approximation used by the
/// CUDA sample (Hull).
fn cnd(d: f32) -> f32 {
    const A1: f32 = 0.319_381_53;
    const A2: f32 = -0.356_563_78;
    const A3: f32 = 1.781_477_9;
    const A4: f32 = -1.821_255_9;
    const A5: f32 = 1.330_274_5;
    const RSQRT2PI: f32 = 0.398_942_3;
    let k = 1.0 / (1.0 + 0.231_641_9 * d.abs());
    let poly = k * (A1 + k * (A2 + k * (A3 + k * (A4 + k * A5))));
    let cnd = RSQRT2PI * (-0.5 * d * d).exp() * poly;
    if d > 0.0 {
        1.0 - cnd
    } else {
        cnd
    }
}

/// Prices one option; returns (call, put).
pub fn black_scholes_ref(s: f32, x: f32, t: f32, r: f32, v: f32) -> (f32, f32) {
    let sqrt_t = t.sqrt();
    let d1 = ((s / x).ln() + (r + 0.5 * v * v) * t) / (v * sqrt_t);
    let d2 = d1 - v * sqrt_t;
    let cnd_d1 = cnd(d1);
    let cnd_d2 = cnd(d2);
    let exp_rt = (-r * t).exp();
    let call = s * cnd_d1 - x * exp_rt * cnd_d2;
    let put = x * exp_rt * (1.0 - cnd_d2) - s * (1.0 - cnd_d1);
    (call, put)
}

/// The BlackScholes kernel bound to its device buffers.
pub struct BlackScholesKernel {
    n: usize,
    riskfree: f32,
    volatility: f32,
    stock: Arc<GpuBuffer>,
    strike: Arc<GpuBuffer>,
    years: Arc<GpuBuffer>,
    call: Arc<GpuBuffer>,
    put: Arc<GpuBuffer>,
}

impl BlackScholesKernel {
    /// Binds the kernel to buffers holding `n` options each (f32 elements).
    /// Buffers must hold at least `n` words.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: usize,
        riskfree: f32,
        volatility: f32,
        stock: Arc<GpuBuffer>,
        strike: Arc<GpuBuffer>,
        years: Arc<GpuBuffer>,
        call: Arc<GpuBuffer>,
        put: Arc<GpuBuffer>,
    ) -> Self {
        for (label, b) in [
            ("stock", &stock),
            ("strike", &strike),
            ("years", &years),
            ("call", &call),
            ("put", &put),
        ] {
            assert!(
                b.len_words() >= n,
                "{label} buffer too small for {n} options"
            );
        }
        Self {
            n,
            riskfree,
            volatility,
            stock,
            strike,
            years,
            call,
            put,
        }
    }

    /// Grid size for `n` options.
    pub fn grid_for(n: usize) -> GridDim {
        GridDim::d1(((n as u64).div_ceil(OPT_PER_BLOCK as u64)).max(1) as u32)
    }
}

impl GpuKernel for BlackScholesKernel {
    fn name(&self) -> &str {
        "BlackScholes"
    }

    fn grid(&self) -> GridDim {
        Self::grid_for(self.n)
    }

    fn perf(&self) -> KernelPerf {
        paper_perf()
    }

    fn run_block(&self, block: BlockCoord) {
        let base = block.x as usize * OPT_PER_BLOCK as usize;
        let end = (base + OPT_PER_BLOCK as usize).min(self.n);
        for i in base..end {
            let (c, p) = black_scholes_ref(
                self.stock.load_f32(i),
                self.strike.load_f32(i),
                self.years.load_f32(i),
                self.riskfree,
                self.volatility,
            );
            self.call.store_f32(i, c);
            self.put.store_f32(i, p);
        }
    }
}

/// Calibrated profile reproducing Table II on the simulated Titan Xp:
/// solo CUDA run achieves ≈161 GFLOP/s and ≈401 GB/s request bandwidth.
pub fn paper_perf() -> KernelPerf {
    KernelPerf {
        name: "BlackScholes".into(),
        threads_per_block: THREADS,
        regs_per_thread: 32,
        smem_per_block: 0,
        compute_cycles_per_block: 2205.0,
        insts_per_block: 4032.0,
        flops_per_block: 8230.0,
        // 1024 options x (3 reads + 2 writes) x 4 B.
        mem_request_bytes_per_block: OPT_PER_BLOCK as f64 * 20.0,
        dram_bytes_inorder: OPT_PER_BLOCK as f64 * 20.0,
        dram_bytes_scattered: OPT_PER_BLOCK as f64 * 20.0,
        l2_footprint_bytes: 0.2e6,
        inject_insts_per_block: 103.0,
        inject_cycles_per_block: 20.0,
        max_concurrent_blocks: None,
    }
}

/// Blocks per launch at the paper problem size.
pub fn paper_blocks() -> u64 {
    PAPER_OPTIONS.div_ceil(OPT_PER_BLOCK as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{run_parallel, run_reference};

    fn setup(n: usize) -> (BlackScholesKernel, Arc<GpuBuffer>, Arc<GpuBuffer>) {
        let mk = || Arc::new(GpuBuffer::new(n * 4));
        let (s, x, t, c, p) = (mk(), mk(), mk(), mk(), mk());
        // Deterministic pseudo-inputs in realistic ranges.
        for i in 0..n {
            let f = i as f32;
            s.store_f32(i, 5.0 + (f * 0.37) % 95.0);
            x.store_f32(i, 1.0 + (f * 0.53) % 99.0);
            t.store_f32(i, 0.25 + (f * 0.11) % 9.75);
        }
        (
            BlackScholesKernel::new(n, 0.02, 0.30, s, x, t, c.clone(), p.clone()),
            c,
            p,
        )
    }

    #[test]
    fn put_call_parity_holds() {
        // call - put = S - X * exp(-rT)
        let (s, x, t, r, v) = (42.0f32, 40.0f32, 0.5f32, 0.02f32, 0.3f32);
        let (call, put) = black_scholes_ref(s, x, t, r, v);
        let parity = s - x * (-r * t).exp();
        assert!(
            (call - put - parity).abs() < 1e-3,
            "parity violated: {} vs {}",
            call - put,
            parity
        );
    }

    #[test]
    fn known_value() {
        // Standard textbook case: S=100, X=100, T=1, r=5%, v=20%:
        // call ~ 10.45, put ~ 5.57.
        let (call, put) = black_scholes_ref(100.0, 100.0, 1.0, 0.05, 0.20);
        assert!((call - 10.45).abs() < 0.05, "call {call}");
        assert!((put - 5.57).abs() < 0.05, "put {put}");
    }

    #[test]
    fn kernel_prices_every_option_including_tail() {
        // n not a multiple of the per-block coverage exercises the tail.
        let n = OPT_PER_BLOCK as usize * 3 + 17;
        let (k, call, _put) = setup(n);
        run_reference(&k);
        for i in 0..n {
            let c = call.load_f32(i);
            assert!(c.is_finite() && c >= -1e-3, "option {i}: call {c}");
        }
        // Block beyond the tail would have written past n: ensure grid sized
        // correctly.
        assert_eq!(k.grid().total_blocks(), 4);
    }

    #[test]
    fn parallel_execution_matches_reference() {
        let n = 4096 + 13;
        let (k1, c1, p1) = setup(n);
        run_reference(&k1);
        let (k2, c2, p2) = setup(n);
        run_parallel(&k2);
        for i in 0..n {
            assert_eq!(c1.load_f32(i), c2.load_f32(i));
            assert_eq!(p1.load_f32(i), p2.load_f32(i));
        }
    }

    #[test]
    fn paper_profile_is_valid_and_medium_intensity() {
        let p = paper_perf();
        p.validate().unwrap();
        // Streaming kernel: no locality gap.
        assert_eq!(p.dram_bytes_inorder, p.dram_bytes_scattered);
        assert!(paper_blocks() > 30_000);
    }
}
