//! Table II — benchmark profiles.
//!
//! Each application runs solo under vanilla CUDA at the paper problem size;
//! nvprof-style counters give its GFLOP/s and global load+store bandwidth,
//! which must land near the paper's measurements and classify identically.

use crate::report::{f, Report, Table};
use slate_core::classify::classify_measured;
use slate_core::profile::profile_kernel;
use slate_gpu_sim::device::DeviceConfig;
use slate_kernels::workload::Benchmark;

/// Measured profile row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark.
    pub bench: Benchmark,
    /// Measured GFLOP/s (solo, CUDA).
    pub gflops: f64,
    /// Measured request bandwidth GB/s.
    pub gbs: f64,
}

/// Runs the Table II measurement.
pub fn run(cfg: &DeviceConfig) -> (Vec<Row>, Report) {
    let mut report = Report::new(
        "table2",
        "Benchmark profiles (solo CUDA)",
        "BS 161.3 GFLOP/s / 401.5 GB/s (Med/Med); GS 19.6 / 340.9 (Low/Med); \
         MM 1525 / 403.5 (High/Med); RG 4.2 / 71.6 (Low/Low); TR 0.0 / 568.6 (Low/High).",
    );
    let mut t = Table::new(
        "Benchmark profiles",
        &[
            "Benchmark",
            "Compute",
            "Memory",
            "GFLOP/s (paper)",
            "GFLOP/s (measured)",
            "GB/s (paper)",
            "GB/s (measured)",
            "Class",
        ],
    );
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        let app = b.app();
        let p = profile_kernel(cfg, &app.perf, app.blocks_per_launch);
        let (gf_ref, gb_ref) = b.paper_reference();
        let (ci, mi) = b.intensity();
        t.row(&[
            format!("{} ({})", b.full_name(), b.abbrev()),
            ci.to_string(),
            mi.to_string(),
            f(gf_ref, 1),
            f(p.gflops, 1),
            f(gb_ref, 1),
            f(p.bandwidth_gbs, 1),
            p.class.label().to_string(),
        ]);
        // Classification must reproduce exactly; figures within 15%.
        let class_ok = p.class == classify_measured(gf_ref, gb_ref);
        report.check(
            &format!("{} classifies as in the paper", b.abbrev()),
            class_ok,
        );
        let gb_ok = (p.bandwidth_gbs - gb_ref).abs() / gb_ref < 0.15;
        report.check(
            &format!("{} bandwidth within 15% of paper", b.abbrev()),
            gb_ok,
        );
        if gf_ref > 1.0 {
            report.check(
                &format!("{} GFLOP/s within 15% of paper", b.abbrev()),
                (p.gflops - gf_ref).abs() / gf_ref < 0.15,
            );
        }
        rows.push(Row {
            bench: b,
            gflops: p.gflops,
            gbs: p.bandwidth_gbs,
        });
    }
    report.tables.push(t);
    (rows, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reproduces() {
        let (rows, report) = run(&DeviceConfig::titan_xp());
        assert_eq!(rows.len(), 5);
        assert!(report.all_pass(), "{}", report.to_text());
    }
}
