//! # slate-core
//!
//! Rust implementation of **Slate** — the workload-aware GPU
//! multiprocessing framework of Allen, Feng & Ge (IPDPS 2019) — over the
//! `slate-gpu-sim` substrate.
//!
//! The crate has two coupled layers:
//!
//! **Functional layer** (real threads, real atomics) — demonstrates and
//! tests the mechanisms themselves:
//! [`transform`] (grid flattening `K(B,T) → K*(B*,T)`), [`queue`] (the
//! `slateIdx` task queue), [`workers`] (persistent workers with the SM-range
//! gate of Listing 1), [`dispatch`] (the resizing dispatch kernel of
//! Listing 3), [`scanner`]/[`injector`] (the FLEX + NVRTC source-injection
//! pipeline), and the client/daemon runtime in [`daemon`] and [`api`].
//!
//! **Scheduling layer** (simulated time) — reproduces the paper's
//! performance results: [`profile`] (first-run profiling + profile table),
//! [`classify`]/[`policy`]/[`select`] (workload classes, Table I, the Fig. 4
//! selection algorithm), [`partition`] (SM-demand-driven spatial splits) and
//! [`runtime`] (the Slate scheduler with co-running and dynamic resizing,
//! implementing the common `Runtime` trait next to the CUDA and MPS
//! baselines).
//!
//! Both layers share one brain: the [`arbiter`] module is a deterministic,
//! I/O-free arbitration core (events in, commands out) behind which every
//! corun/partition/resize/admission/starvation decision lives. The
//! simulated [`runtime`] and the live [`daemon`] are thin drivers of it,
//! which is what makes daemon scheduling decisions replayable
//! ([`arbiter::replay`]).

#![warn(missing_docs)]

pub mod admission;
pub mod api;
pub mod arbiter;
pub mod backend;
pub mod channel;
pub mod classify;
pub mod daemon;
pub mod dispatch;
pub mod durability;
pub mod error;
pub mod feed;
pub mod injector;
pub mod partition;
pub mod placement;
pub mod policy;
pub mod pragma;
pub mod profile;
pub mod queue;
pub mod runtime;
pub mod scanner;
pub mod select;
pub mod sync;
pub mod trace;
pub mod transform;
pub mod workers;

pub use admission::{AdmissionLimits, AdmissionStats, DaemonMetrics};
pub use api::SlateClient;
pub use arbiter::{ArbiterConfig, ArbiterCore};
pub use channel::SlatePtr;
pub use classify::WorkloadClass;
pub use daemon::{ResumeToken, SlateDaemon};
pub use durability::DurabilityOptions;
pub use error::SlateError;
pub use placement::{PlacementConfig, PlacementLayer, PlacementPolicy, RebalanceConfig};
pub use policy::{should_corun, Verdict};
pub use profile::{KernelProfile, ProfileTable};
pub use runtime::{SlateOptions, SlateRuntime};
pub use trace::{Trace, TraceSchema};
