//! Cross-backend conformance: every [`Backend`] implementation must pass
//! the same scripted execution scenarios (see
//! [`slate_core::backend::testkit`]), with and without injected
//! command-stream chaos.

use slate_core::backend::{testkit, Backend, ChaosBackend, DispatcherBackend, SimBackend};
use slate_gpu_sim::device::DeviceConfig;
use slate_gpu_sim::fault::FaultPlan;

fn device() -> DeviceConfig {
    DeviceConfig::tiny(4)
}

#[test]
fn sim_backend_passes_conformance() {
    testkit::run_conformance(&mut || Box::new(SimBackend::new(device())));
}

#[test]
fn dispatcher_backend_passes_conformance() {
    testkit::run_conformance(&mut || Box::new(DispatcherBackend::new(device())));
}

#[test]
fn chaos_wrapped_sim_backend_passes_conformance() {
    for seed in [0xA11CE, 0xB0B, 42] {
        testkit::run_conformance(&mut || {
            Box::new(ChaosBackend::new(
                SimBackend::new(device()),
                FaultPlan::command_chaos(seed, 12),
            ))
        });
    }
}

#[test]
fn chaos_wrapped_dispatcher_backend_passes_conformance() {
    for seed in [0xA11CE, 0xB0B, 42] {
        testkit::run_conformance(&mut || {
            Box::new(ChaosBackend::new(
                DispatcherBackend::new(device()),
                FaultPlan::command_chaos(seed, 12),
            ))
        });
    }
}

#[test]
fn device_chaos_wrapped_sim_backend_passes_conformance() {
    // Seeded device outages (losses, stalls, flaps) fire mid-scenario;
    // the decorator recovers each one inline, so every execution property
    // must still hold.
    for seed in [0xA11CE, 0xB0B, 42] {
        testkit::run_conformance(&mut || {
            Box::new(ChaosBackend::new(
                SimBackend::new(device()),
                FaultPlan::device_chaos(seed, 6),
            ))
        });
    }
}

#[test]
fn device_chaos_wrapped_dispatcher_backend_passes_conformance() {
    for seed in [0xA11CE, 0xB0B, 42] {
        testkit::run_conformance(&mut || {
            Box::new(ChaosBackend::new(
                DispatcherBackend::new(device()),
                FaultPlan::device_chaos(seed, 6),
            ))
        });
    }
}

#[test]
fn chaos_perturbations_actually_fire() {
    // The chaos suite only means something if the perturbations trigger:
    // run the churn scenario (9+ commands) against a dense plan and check
    // rules fired.
    let mut b = ChaosBackend::new(
        DispatcherBackend::new(device()),
        FaultPlan::command_chaos(0x5EED, 16),
    );
    testkit::resize_churn_exactly_once(&mut b, 7);
    assert!(
        b.faults_fired() > 0,
        "chaos plan never fired during the churn scenario"
    );
}

#[test]
fn backends_report_their_nature() {
    let sim = SimBackend::new(device());
    assert_eq!(sim.name(), "sim");
    assert!(!sim.is_functional());
    let disp = DispatcherBackend::new(device());
    assert_eq!(disp.name(), "dispatcher");
    assert!(disp.is_functional());
    let chaos = ChaosBackend::new(SimBackend::new(device()), FaultPlan::new());
    assert_eq!(chaos.name(), "chaos");
    assert!(!chaos.is_functional());
}

#[test]
fn differential_runner_agrees_on_a_fresh_recording() {
    // Record a live BS-RG co-run (it contains Dispatch + Resize churn),
    // then replay its command stream through both backends and require
    // identical observable transcripts.
    use slate_baselines::runtime::Runtime as _;
    use slate_core::runtime::SlateRuntime;
    use slate_kernels::workload::Benchmark;

    let cfg = DeviceConfig::titan_xp();
    let rt = SlateRuntime::new(cfg.clone());
    let apps = [
        Benchmark::BS.app().scaled_down(30),
        Benchmark::RG.app().scaled_down(30),
    ];
    let (_, log) = rt.run_recorded(&apps);
    assert_eq!(rt.device().num_sms, cfg.num_sms);

    let mut sim = SimBackend::new(log.device.clone());
    let mut disp = DispatcherBackend::new(log.device.clone());
    let a = testkit::replay_transcript(&log, &mut sim);
    let b = testkit::replay_transcript(&log, &mut disp);
    assert!(!a.is_empty(), "the recording must contain dispatches");
    assert_eq!(a, b, "sim and dispatcher transcripts diverged");
}
