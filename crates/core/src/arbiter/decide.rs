//! The scheduling pass: one deterministic sweep over the core's state,
//! run after every event batch.
//!
//! The pass encodes the paper's pipeline in priority order:
//!
//! 1. **Watchdog** — residents past their armed deadline are evicted.
//! 2. **Solo dispatch** — an empty device goes to the oldest waiter
//!    (promoting it first if it has starved past the bound).
//! 3. **In-place continuation** — a kernel that just became ready again
//!    and whose previous partition is exactly the free complement resumes
//!    there without resizing the resident (the common case for a sliced
//!    kernel between slices).
//! 4. **SLO preemption** — with `preempt_bound_us` set, a latency-critical
//!    waiter displaces a lone best-effort resident: [`partition`] splits
//!    the device, the resident retreats to its share (`Resize`), the
//!    arrival dispatches on the rest. An SLO override of Table I — the
//!    pair co-runs even where the policy says solo — announced by
//!    [`Command::Preempt`]. Starved waiters outrank it (§9 aging), so
//!    best-effort work still ages to promotion under a decode flood.
//! 5. **Co-run join** (§III-B/C) — Table-I partner selection over the
//!    waiters, then [`partition`] splits the device and the resident is
//!    resized to its share.
//! 6. **Regrow** (§III-D) — a lone resident on a partial partition takes
//!    the whole device back.

use super::events::Command;
use super::state::{ArbiterCore, Resident};
use crate::partition::partition;
use crate::policy::should_corun;
use crate::select::{select_partner, PartnerCandidate};
use slate_gpu_sim::device::SmRange;
use slate_kernels::workload::SloClass;

/// The free part of a split device: `range`'s complement within `full`,
/// when the complement is itself contiguous.
fn complement(range: SmRange, full: SmRange) -> Option<SmRange> {
    if range == full {
        None
    } else if range.lo == full.lo {
        Some(SmRange::new(range.hi + 1, full.hi))
    } else if range.hi == full.hi {
        Some(SmRange::new(full.lo, range.lo - 1))
    } else {
        None
    }
}

impl ArbiterCore {
    /// Runs the scheduling pass, appending commands to `out`.
    pub(super) fn decide(&mut self, out: &mut Vec<Command>) {
        self.scan_deadlines(out);
        let full = SmRange::all(self.device.num_sms);
        loop {
            match self.residents.len() {
                0 => {
                    let Some(head) = self.head_waiter() else {
                        break;
                    };
                    let starved = self
                        .config
                        .starvation_bound_us
                        .is_some_and(|b| self.now - self.waiters[head].since >= b);
                    if starved {
                        self.promotions += 1;
                        out.push(Command::PromoteStarved {
                            lease: self.waiters[head].lease,
                        });
                    }
                    // A promoted waiter is pinned for its run: starvation
                    // means it is owed the whole device, undisturbed.
                    self.dispatch(head, full, starved, out);
                }
                1 => {
                    if self.preempt_for_latency_critical(out) {
                        continue;
                    }
                    if self.continue_in_place(full, out) {
                        continue;
                    }
                    if self.corun_join(out) {
                        continue;
                    }
                    let r = &self.residents[0];
                    if self.config.enable_resize && r.range != full {
                        let lease = r.lease;
                        self.residents[0].range = full;
                        out.push(Command::Resize { lease, range: full });
                    }
                    break;
                }
                // Two residents: the device is fully split already.
                _ => break,
            }
        }
    }

    /// Evicts every resident past its armed deadline. The resident stays
    /// in the set — the frontend feeds `KernelFinished {ok: false}` once
    /// the retreat actually lands — but the deadline is disarmed so the
    /// eviction fires exactly once. The armed list is sorted by external
    /// lease id, so `Evict`s come out in ascending lease order — the same
    /// order the pre-interning ordered-map scan produced.
    fn scan_deadlines(&mut self, out: &mut Vec<Command>) {
        let mut i = 0;
        while i < self.armed.len() {
            if self.now >= self.armed[i].1 {
                let (lease, _) = self.armed.remove(i);
                self.evictions += 1;
                out.push(Command::Evict { lease });
            } else {
                i += 1;
            }
        }
    }

    /// FIFO head: the waiter that became ready earliest, ties broken by
    /// arrival order. This is also the longest-waiting (most starved)
    /// waiter, since `since` is nondecreasing in `seq`.
    ///
    /// With SLO priority enabled, latency-critical waiters outrank
    /// best-effort ones (oldest-first within the class) — unless some
    /// waiter has already starved past the aging bound, in which case
    /// strict FIFO applies so best-effort work cannot be priority-starved
    /// indefinitely.
    fn head_waiter(&self) -> Option<usize> {
        if self.config.preempt_bound_us.is_some() && !self.any_waiter_starved() {
            let lc = self
                .waiters
                .iter()
                .enumerate()
                .filter(|(_, w)| w.slo == SloClass::LatencyCritical)
                .min_by_key(|(_, w)| (w.since, w.seq))
                .map(|(i, _)| i);
            if lc.is_some() {
                return lc;
            }
        }
        self.waiters
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| (w.since, w.seq))
            .map(|(i, _)| i)
    }

    /// Whether any waiter (pinned included) has aged past the starvation
    /// bound. Starvation outranks SLO priority everywhere: the aging
    /// machinery is the anti-starvation credit best-effort work holds
    /// against a latency-critical flood.
    fn any_waiter_starved(&self) -> bool {
        self.config
            .starvation_bound_us
            .is_some_and(|b| self.waiters.iter().any(|w| self.now - w.since >= b))
    }

    /// Removes waiter `widx`, dispatches it on `range`, and arms its
    /// deadline.
    fn dispatch(&mut self, widx: usize, range: SmRange, pin: bool, out: &mut Vec<Command>) {
        let w = self.waiters.remove(widx);
        if let Some(ms) = w.deadline_ms {
            self.arm_deadline(w.lease, self.now + ms.saturating_mul(1000));
        }
        out.push(Command::Dispatch {
            lease: w.lease,
            range,
        });
        self.residents.push(Resident {
            lease: w.lease,
            session: w.session,
            class: w.class,
            sm_demand: w.sm_demand,
            pinned: w.pinned || pin,
            range,
            slo: w.slo,
        });
    }

    /// Rule 4 (SLO preemption): a non-pinned latency-critical waiter
    /// displaces a lone, non-pinned best-effort resident. The device is
    /// partitioned by SM demand exactly as a co-run join would, the
    /// resident retreats to its share via the resize path, and the
    /// arrival dispatches on the remainder — regardless of what Table I
    /// says about the pair (the SLO override; `enable_corun` ablates only
    /// policy-driven pairings, not SLO-driven ones). Refused while
    /// draining and whenever any waiter has starved past the aging bound:
    /// a preemption must never push starved best-effort work further
    /// back.
    fn preempt_for_latency_critical(&mut self, out: &mut Vec<Command>) -> bool {
        if self.config.preempt_bound_us.is_none() || self.draining {
            return false;
        }
        let (r_slo, r_pinned, r_demand, r_range, r_lease) = {
            let r = &self.residents[0];
            (r.slo, r.pinned, r.sm_demand, r.range, r.lease)
        };
        if r_pinned || r_slo == SloClass::LatencyCritical {
            return false;
        }
        if self.any_waiter_starved() {
            return false;
        }
        let Some(widx) = self
            .waiters
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.pinned && w.slo == SloClass::LatencyCritical)
            .min_by_key(|(_, w)| (w.since, w.seq))
            .map(|(i, _)| i)
        else {
            return false;
        };
        self.preemptions += 1;
        out.push(Command::Preempt { lease: r_lease });
        let part = partition(&self.device, r_demand, self.waiters[widx].sm_demand);
        if part.a != r_range {
            // Like the co-run shrink, the retreat happens regardless of
            // `enable_resize` — that switch ablates only the survivor
            // regrow.
            self.residents[0].range = part.a;
            out.push(Command::Resize {
                lease: r_lease,
                range: part.a,
            });
        }
        self.dispatch(widx, part.b, false, out);
        true
    }

    /// Rule 3: a waiter that became ready *this batch* and whose previous
    /// partition is exactly the free complement of the lone resident
    /// resumes in place — no resize, no fresh selection. This keeps a
    /// co-running pair stable across the slices of a long kernel.
    fn continue_in_place(&mut self, full: SmRange, out: &mut Vec<Command>) -> bool {
        if !self.config.enable_corun || self.draining {
            return false;
        }
        let (r_class, r_range, r_pinned) = {
            let r = &self.residents[0];
            (r.class, r.range, r.pinned)
        };
        if r_pinned {
            return false;
        }
        let Some(free) = complement(r_range, full) else {
            return false;
        };
        let now = self.now;
        let leases = &self.leases;
        let last_range = &self.last_range;
        let hit = self.waiters.iter().position(|w| {
            w.since == now
                && !w.pinned
                && leases.get(w.lease).and_then(|s| last_range[s as usize]) == Some(free)
                && should_corun(r_class, w.class)
        });
        let Some(widx) = hit else { return false };
        self.dispatch(widx, free, false, out);
        true
    }

    /// Rule 4: Table-I partner selection over the waiters, partition the
    /// device, shrink the resident to its share, dispatch the partner on
    /// the rest. Refused while draining, while the resident is pinned, or
    /// while *any* waiter (pinned included) has starved past the bound —
    /// a fresh pairing must never push a starved waiter further back.
    fn corun_join(&mut self, out: &mut Vec<Command>) -> bool {
        if !self.config.enable_corun || self.draining {
            return false;
        }
        let (r_class, r_demand, r_range, r_pinned, r_lease) = {
            let r = &self.residents[0];
            (r.class, r.sm_demand, r.range, r.pinned, r.lease)
        };
        if r_pinned {
            return false;
        }
        if let Some(bound) = self.config.starvation_bound_us {
            if self.waiters.iter().any(|w| self.now - w.since >= bound) {
                return false;
            }
        }
        // Candidate buffers are core-owned scratch: taken for the pass,
        // returned before any exit so their capacity is reused next time.
        let mut cands = std::mem::take(&mut self.scratch_cands);
        let mut idxs = std::mem::take(&mut self.scratch_idxs);
        cands.clear();
        idxs.clear();
        for (i, w) in self.waiters.iter().enumerate() {
            if w.pinned {
                continue;
            }
            cands.push(PartnerCandidate {
                class: w.class,
                waited_s: (self.now - w.since) as f64 / 1e6,
                order: w.seq,
            });
            idxs.push(i);
        }
        let chosen = select_partner(r_class, &cands).map(|ci| idxs[ci]);
        self.scratch_cands = cands;
        self.scratch_idxs = idxs;
        let Some(widx) = chosen else {
            return false;
        };
        let part = partition(&self.device, r_demand, self.waiters[widx].sm_demand);
        if part.a != r_range {
            // The shrink happens regardless of `enable_resize`: that
            // switch ablates only the survivor *regrow* (rule 5), which is
            // what "strands" a survivor on its partition when disabled.
            self.residents[0].range = part.a;
            out.push(Command::Resize {
                lease: r_lease,
                range: part.a,
            });
        }
        self.dispatch(widx, part.b, false, out);
        true
    }
}
