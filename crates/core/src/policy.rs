//! The heuristic scheduling policy (paper Table I).
//!
//! An empirically derived matrix over workload-class pairs: "corun" when
//! the two classes are complementary (their concurrent execution yields a
//! better average normalized turnaround time than running consecutively),
//! "solo" otherwise. The matrix is reproduced verbatim from the paper,
//! including its asymmetric entries; [`should_corun`] takes the
//! conservative symmetric closure (co-run only if both directions say so),
//! which is the decision Slate needs for a pair.

use crate::classify::WorkloadClass;
use serde::{Deserialize, Serialize};

/// A policy verdict for a kernel pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Run the kernels concurrently on disjoint SM partitions.
    Corun,
    /// Run the kernels consecutively, each solo on the whole device.
    Solo,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Verdict::Corun => "corun",
            Verdict::Solo => "solo",
        })
    }
}

use Verdict::{Corun, Solo};

/// Table I verbatim: rows indexed by the running kernel's class, columns by
/// the candidate's class, both in [`WorkloadClass::ALL`] order
/// (L_C, M_C, H_C, M_M, H_M).
pub const TABLE: [[Verdict; 5]; 5] = [
    // running \ candidate:  L_C    M_C    H_C    M_M    H_M
    /* L_C */
    [Corun, Corun, Solo, Corun, Corun],
    /* M_C */ [Corun, Corun, Solo, Solo, Corun],
    /* H_C */ [Solo, Solo, Solo, Solo, Corun],
    /* M_M */ [Corun, Solo, Corun, Solo, Solo],
    /* H_M */ [Corun, Corun, Solo, Solo, Solo],
];

fn idx(c: WorkloadClass) -> usize {
    WorkloadClass::ALL
        .iter()
        .position(|&x| x == c)
        .expect("class in ALL")
}

/// Raw table lookup: verdict for `candidate` joining `running`.
pub fn lookup(running: WorkloadClass, candidate: WorkloadClass) -> Verdict {
    TABLE[idx(running)][idx(candidate)]
}

/// The pair decision Slate uses: co-run only when the table agrees in both
/// directions (symmetric closure of the published matrix).
pub fn should_corun(a: WorkloadClass, b: WorkloadClass) -> bool {
    lookup(a, b) == Corun && lookup(b, a) == Corun
}

/// Aging-aware pair decision: once either kernel has waited past the
/// starvation bound it must run solo — the policy table notwithstanding —
/// so that a long co-run chain can never hold a waiter forever.
pub fn should_corun_aged(a: WorkloadClass, b: WorkloadClass, either_starved: bool) -> bool {
    !either_starved && should_corun(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::WorkloadClass::*;

    #[test]
    fn table_matches_paper_row_by_row() {
        // Spot-check every row against the published Table I.
        assert_eq!(lookup(LC, LC), Corun);
        assert_eq!(lookup(LC, HC), Solo);
        assert_eq!(lookup(LC, HM), Corun);
        assert_eq!(lookup(MC, MM), Solo);
        assert_eq!(lookup(MC, HM), Corun);
        assert_eq!(lookup(HC, HC), Solo);
        assert_eq!(lookup(HC, HM), Corun);
        assert_eq!(lookup(MM, LC), Corun);
        assert_eq!(lookup(MM, HC), Corun); // asymmetric vs (HC, MM) = Solo
        assert_eq!(lookup(MM, MM), Solo);
        assert_eq!(lookup(HM, LC), Corun);
        assert_eq!(lookup(HM, HM), Solo);
    }

    #[test]
    fn symmetric_closure_resolves_asymmetries_to_solo() {
        assert_eq!(lookup(MM, HC), Corun);
        assert_eq!(lookup(HC, MM), Solo);
        assert!(!should_corun(MM, HC));
        assert!(!should_corun(HC, MM));
    }

    /// The decisions the paper reports for its benchmark set: RG (L_C)
    /// coruns with everything; all other pairs run solo.
    #[test]
    fn paper_benchmark_decisions() {
        // BS, GS, MM are M_M; RG is L_C; TR is H_M.
        for &other in &[MM, HM, LC] {
            assert!(should_corun(LC, other), "RG pairs corun with {other:?}");
        }
        assert!(!should_corun(MM, MM), "BS-GS/BS-MM/GS-MM run solo");
        assert!(!should_corun(MM, HM), "TR pairs with M_M run solo");
        assert!(!should_corun(HM, HM), "TR-TR runs solo");
    }

    #[test]
    fn aged_decision_forces_solo_for_starved_pairs() {
        assert!(
            should_corun_aged(LC, MM, false),
            "fresh pairs follow Table I"
        );
        assert!(
            !should_corun_aged(LC, MM, true),
            "starvation overrides Corun"
        );
        assert!(!should_corun_aged(MM, MM, false), "Solo verdicts stay solo");
        assert!(!should_corun_aged(MM, MM, true));
    }

    #[test]
    fn should_corun_is_symmetric() {
        for &a in &WorkloadClass::ALL {
            for &b in &WorkloadClass::ALL {
                assert_eq!(should_corun(a, b), should_corun(b, a), "{a:?} {b:?}");
            }
        }
    }
}
