//! Poison-tolerant synchronization primitives for the daemon.
//!
//! The daemon runs one thread per session plus one per stream lane; a
//! panic inside any of them (a faulty kernel, an injected fault, a test
//! assertion) poisons every `std::sync::Mutex` it held at the time. With
//! bare `.unwrap()` on `lock()`, that one panic cascades: every later
//! locker panics too and the whole daemon wedges. [`Mutex::lock`] here
//! recovers the poisoned guard instead (the protected state is still
//! structurally valid — the daemon's shared maps and counters are updated
//! atomically under the lock, never left half-written across a panic
//! point) and counts the recovery, so operators can observe that a
//! session thread died without the daemon dying with it.
//!
//! The API mirrors the `parking_lot` subset the daemon previously used:
//! `lock()` returns the guard directly and [`Condvar::wait`] takes
//! `&mut MutexGuard`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A mutex whose `lock()` recovers from poisoning instead of panicking,
/// counting each recovery.
pub struct Mutex<T: ?Sized> {
    recoveries: AtomicU64,
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back in
    // without dropping the wrapper.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            recoveries: AtomicU64::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock. A poisoned lock (some thread panicked while
    /// holding it) is recovered transparently and counted in
    /// [`Mutex::recoveries`].
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|poisoned| {
            self.recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        });
        MutexGuard { inner: Some(guard) }
    }

    /// Times this mutex recovered a poisoned guard in `lock()`.
    pub fn recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sync::Mutex")
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable paired with [`Mutex`]; waits recover poisoned
/// guards the same way [`Mutex::lock`] does.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => e.into_inner(),
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sync::Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.recoveries(), 0);
    }

    #[test]
    fn poisoned_lock_recovers_and_counts() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // Every subsequent locker recovers (and each recovery is counted,
        // because std keeps the mutex marked poisoned).
        assert_eq!(*m.lock(), 7);
        assert!(m.recoveries() >= 1, "recovery must be counted");
        *m.lock() += 1;
        assert_eq!(*m.lock(), 8, "state stays usable after recovery");
    }

    #[test]
    fn condvar_wait_survives_poisoned_mutex() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison while a waiter exists");
        })
        .join();
        let waiter_m = m.clone();
        let waiter_cv = cv.clone();
        let t = std::thread::spawn(move || {
            let mut g = waiter_m.lock();
            while !*g {
                waiter_cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
