//! # slate-bench
//!
//! Criterion benchmarks for the Slate reproduction. One bench target per
//! regenerated paper artefact — `fig1_stream_scaling`, `table2_profiles`,
//! `fig5_task_size`, `fig7_pairings` — each of which re-runs the
//! corresponding experiment (asserting its shape checks) before measuring
//! the simulator's evaluation cost, plus `micro_substrate` covering the
//! framework's hot paths: task-queue atomics under contention, the injected
//! index-reconstruction loop, the source scanner/injector, and the engine's
//! event processing.
//!
//! The `hotpaths` bench is different: it times the scheduler's own hot
//! paths ([`ArbiterCore::feed`](slate_core::ArbiterCore) batch throughput,
//! [`partition`](slate_core::partition::partition), placement routing, and
//! a [`SimBackend`](slate_core::backend::SimBackend) drain) with its own
//! fixed-iteration harness and emits the machine-readable [`Report`] JSON
//! that CI's regression gate (`bench_gate`) compares against the committed
//! `BENCH_baseline.json`.
//!
//! Run with `cargo bench --workspace`; emit the report with
//! `cargo bench -p slate-bench --bench hotpaths -- --json out.json`
//! (or via the `SLATE_BENCH_JSON` environment variable).

use serde::{Deserialize, Serialize};

/// Version stamp of the report layout; the gate refuses to compare
/// mismatched schemas instead of silently misreading fields.
pub const REPORT_SCHEMA: u32 = 1;

/// One benchmark's measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchMeasurement {
    /// Stable bench name (the gate matches baseline to current by it).
    pub name: String,
    /// Whether the hard regression gate applies to this bench (soft
    /// warnings apply to every bench regardless).
    pub gated: bool,
    /// Timed iterations per run.
    pub iters: u64,
    /// Best-of-runs nanoseconds per iteration (minimum over the
    /// measurement runs — the least-noise estimate of the true cost).
    pub ns_per_iter: f64,
    /// Work items (events, calls, blocks) per iteration, so throughput
    /// can be derived as `items_per_iter / ns_per_iter` Gops.
    pub items_per_iter: u64,
}

/// The machine-readable report `hotpaths` emits and `bench_gate` compares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Layout version ([`REPORT_SCHEMA`]).
    pub schema: u32,
    /// The measurements, in execution order.
    pub benches: Vec<BenchMeasurement>,
}

impl Report {
    /// The measurement named `name`, if present.
    pub fn get(&self, name: &str) -> Option<&BenchMeasurement> {
        self.benches.iter().find(|b| b.name == name)
    }
}
