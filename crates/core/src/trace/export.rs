//! Converters from recorded logs to Perfetto traces.
//!
//! Both converters *re-derive* the command stream through deterministic
//! replay rather than trusting the commands stored in the log: the log's
//! events are fed through a fresh core/layer, the replayed commands are
//! checked against the recorded ones (a divergence is an error — the log
//! is stale or tampered), and the trace is built from the replayed
//! stream. That makes the trace a faithful rendering of what the
//! scheduler *would decide today* for the recorded inputs, which is the
//! same property the golden replay tests pin.
//!
//! Track taxonomy (DESIGN.md §19): one trace *process* per device, and
//! within it track 0 (`arbiter`) carrying device-scoped instants
//! (sheds, drain, device down/up) plus the `sm_occupancy` / `residents`
//! counters, and one track per session carrying its lease lifetime
//! slices — a `queued l<N>` slice from `KernelReady` to `Dispatch` and
//! a running slice from `Dispatch` to `KernelFinished`, with resize /
//! preempt / promote / evict instants overlaid and the SLO class as the
//! slice category. Cross-device migrations appear as flow arrows from
//! the eviction on the source device to the re-dispatch on the target.

use super::model::{ArgValue, Trace, TraceEvent};
use crate::arbiter::replay::{self as core_replay, EventLog};
use crate::arbiter::{Command, Event, Tick};
use crate::classify::WorkloadClass;
use crate::placement::replay::{self as placement_replay, PlacementLog};
use slate_gpu_sim::device::DeviceConfig;
use slate_kernels::workload::SloClass;
use std::collections::BTreeMap;

/// Builds the trace of a single-device arbitration recording. The
/// command stream is re-derived by [`core_replay::replay`] and verified
/// against the log before conversion.
pub fn trace_event_log(log: &EventLog) -> Result<Trace, String> {
    let replayed = core_replay::replay(log);
    for (i, (r, l)) in replayed.iter().zip(&log.batches).enumerate() {
        if r.commands != l.commands {
            return Err(format!(
                "batch {i} (at {}): replay diverged from the recorded commands; \
                 refusing to trace a log the current scheduler does not reproduce",
                l.at
            ));
        }
    }
    let mut b = Builder::new(std::slice::from_ref(&log.device));
    for batch in &replayed {
        b.begin_batch(batch.at);
        for e in &batch.events {
            b.event(batch.at, e);
        }
        for c in &batch.commands {
            b.command(batch.at, 0, c);
        }
        b.end_batch(batch.at);
    }
    Ok(b.finish())
}

/// Builds the trace of a multi-device placement recording. The routed
/// command stream is re-derived by [`placement_replay::replay`] and
/// verified against the log before conversion; migrations become flow
/// arrows between device processes.
pub fn trace_placement_log(log: &PlacementLog) -> Result<Trace, String> {
    let replayed = placement_replay::replay(log);
    for (i, (r, l)) in replayed.iter().zip(&log.batches).enumerate() {
        if r.routed != l.routed {
            return Err(format!(
                "placement batch {i} (at {}): replay diverged from the recorded routing; \
                 refusing to trace a log the current scheduler does not reproduce",
                l.at
            ));
        }
    }
    let mut b = Builder::new(&log.devices);
    for batch in &replayed {
        b.begin_batch(batch.at);
        for e in &batch.events {
            b.event(batch.at, e);
        }
        for r in &batch.routed {
            b.command(batch.at, r.device, &r.command);
        }
        b.end_batch(batch.at);
    }
    Ok(b.finish())
}

/// SM count of an inclusive range.
fn width(lo: u32, hi: u32) -> u32 {
    hi - lo + 1
}

fn slo_cat(slo: SloClass) -> &'static str {
    match slo {
        SloClass::LatencyCritical => "latency-critical",
        SloClass::BestEffort => "best-effort",
    }
}

fn slo_cname(slo: SloClass) -> &'static str {
    match slo {
        SloClass::LatencyCritical => "thread_state_running",
        SloClass::BestEffort => "thread_state_runnable",
    }
}

/// A `KernelReady` waiting for its `Dispatch`.
#[derive(Debug, Clone)]
struct Ready {
    session: u64,
    class: WorkloadClass,
    sm_demand: u32,
    ts: Tick,
    promoted: bool,
}

/// A dispatched lease episode, closed by its `KernelFinished`.
#[derive(Debug, Clone)]
struct Episode {
    device: usize,
    session: u64,
    class: WorkloadClass,
    slo: SloClass,
    ready_ts: Tick,
    start_ts: Tick,
    lo: u32,
    hi: u32,
    resizes: u32,
    preempted: bool,
    promoted: bool,
    evicted: bool,
}

/// Where a lease last ran, for migration-arrow detection.
#[derive(Debug, Clone, Copy)]
struct LastRun {
    device: usize,
    end_ts: Tick,
    evicted: bool,
}

/// Intermediate event, pre-track-assignment. `session: None` targets
/// the device's arbiter track (tid 0).
#[derive(Debug, Clone)]
enum Item {
    Slice {
        device: usize,
        session: u64,
        name: String,
        cat: &'static str,
        cname: &'static str,
        ts: Tick,
        dur: u64,
        args: Vec<(&'static str, ArgValue)>,
    },
    Instant {
        device: usize,
        session: Option<u64>,
        name: String,
        cname: Option<&'static str>,
        ts: Tick,
        args: Vec<(&'static str, ArgValue)>,
    },
    Counter {
        device: usize,
        name: &'static str,
        ts: Tick,
        value: u64,
    },
    Flow {
        device: usize,
        session: u64,
        start: bool,
        id: u64,
        ts: Tick,
        name: String,
    },
}

struct Builder {
    devices: Vec<DeviceConfig>,
    items: Vec<Item>,
    slo: BTreeMap<u64, SloClass>,
    ready: BTreeMap<u64, Ready>,
    running: BTreeMap<u64, Episode>,
    last_run: BTreeMap<u64, LastRun>,
    /// Sticky session → device, for placing pre-dispatch items.
    session_device: BTreeMap<u64, usize>,
    occ: Vec<u64>,
    residents: Vec<u64>,
    dirty: Vec<bool>,
    waiting_dirty: bool,
    next_flow: u64,
    end_ts: Tick,
}

impl Builder {
    fn new(devices: &[DeviceConfig]) -> Self {
        let n = devices.len().max(1);
        Self {
            devices: devices.to_vec(),
            items: Vec::new(),
            slo: BTreeMap::new(),
            ready: BTreeMap::new(),
            running: BTreeMap::new(),
            last_run: BTreeMap::new(),
            session_device: BTreeMap::new(),
            occ: vec![0; n],
            residents: vec![0; n],
            dirty: vec![false; n],
            waiting_dirty: false,
            next_flow: 0,
            end_ts: 0,
        }
    }

    fn begin_batch(&mut self, ts: Tick) {
        self.end_ts = self.end_ts.max(ts);
    }

    fn device_of_session(&self, session: u64) -> usize {
        self.session_device.get(&session).copied().unwrap_or(0)
    }

    fn session_slo(&self, session: u64) -> SloClass {
        self.slo
            .get(&session)
            .copied()
            .unwrap_or(SloClass::BestEffort)
    }

    fn event(&mut self, ts: Tick, e: &Event) {
        match e {
            Event::SloArrival { session, class } => {
                self.slo.insert(*session, *class);
            }
            Event::KernelReady {
                session,
                lease,
                class,
                sm_demand,
                ..
            } => {
                self.ready.insert(
                    *lease,
                    Ready {
                        session: *session,
                        class: *class,
                        sm_demand: *sm_demand,
                        ts,
                        promoted: false,
                    },
                );
                self.waiting_dirty = true;
            }
            Event::KernelFinished { lease, ok } => {
                if let Some(ep) = self.running.remove(lease) {
                    self.close_episode(*lease, ep, ts, *ok, false);
                } else if let Some(r) = self.ready.remove(lease) {
                    // Never dispatched (shed mid-queue, drained, or a
                    // counterfactual replay that chose differently).
                    let device = self.device_of_session(r.session);
                    let slo = self.session_slo(r.session);
                    self.items.push(Item::Slice {
                        device,
                        session: r.session,
                        name: format!("queued l{lease}"),
                        cat: slo_cat(slo),
                        cname: "bad",
                        ts: r.ts,
                        dur: ts.saturating_sub(r.ts),
                        args: vec![
                            ("lease", ArgValue::U64(*lease)),
                            ("undispatched", ArgValue::Bool(true)),
                        ],
                    });
                    self.waiting_dirty = true;
                }
            }
            Event::SessionSevered { session } => {
                let device = self.device_of_session(*session);
                self.items.push(Item::Instant {
                    device,
                    session: Some(*session),
                    name: format!("severed s{session}"),
                    cname: Some("bad"),
                    ts,
                    args: Vec::new(),
                });
            }
            Event::DeviceDown { device, hard } => {
                let d = (*device as usize).min(self.devices.len().saturating_sub(1));
                self.items.push(Item::Instant {
                    device: d,
                    session: None,
                    name: if *hard {
                        "device-down (hard)".to_string()
                    } else {
                        "device-down (soft)".to_string()
                    },
                    cname: Some("terrible"),
                    ts,
                    args: Vec::new(),
                });
            }
            Event::DeviceUp { device } => {
                let d = (*device as usize).min(self.devices.len().saturating_sub(1));
                self.items.push(Item::Instant {
                    device: d,
                    session: None,
                    name: "device-up".to_string(),
                    cname: Some("good"),
                    ts,
                    args: Vec::new(),
                });
            }
            Event::DrainBegan => {
                for d in 0..self.devices.len() {
                    self.items.push(Item::Instant {
                        device: d,
                        session: None,
                        name: "drain-began".to_string(),
                        cname: None,
                        ts,
                        args: Vec::new(),
                    });
                }
            }
            // Session open/close and launch/malloc admission paperwork
            // carry no track of their own; sheds appear via the
            // RejectOverloaded command.
            Event::SessionOpened { .. }
            | Event::SessionClosed { .. }
            | Event::LaunchRequested { .. }
            | Event::MallocRequested { .. }
            | Event::DeadlineTick => {}
        }
    }

    fn command(&mut self, ts: Tick, device: usize, c: &Command) {
        let device = device.min(self.devices.len().saturating_sub(1));
        match c {
            Command::Dispatch { lease, range } => {
                let r = self.ready.remove(lease);
                let (session, class, sm_demand, ready_ts, promoted) = match r {
                    Some(r) => (r.session, r.class, r.sm_demand, r.ts, r.promoted),
                    // A dispatch without a tracked ready (shouldn't
                    // happen on recorded logs) still renders sanely.
                    None => (0, WorkloadClass::LC, 0, ts, false),
                };
                let slo = self.session_slo(session);
                self.session_device.insert(session, device);
                // Migration arrow: same lease, different device, and the
                // previous episode ended in an eviction.
                if let Some(prev) = self.last_run.get(lease).copied() {
                    if prev.device != device && prev.evicted {
                        let id = self.next_flow;
                        self.next_flow += 1;
                        self.items.push(Item::Flow {
                            device: prev.device,
                            session,
                            start: true,
                            id,
                            ts: prev.end_ts,
                            name: format!("migration l{lease}"),
                        });
                        self.items.push(Item::Flow {
                            device,
                            session,
                            start: false,
                            id,
                            ts,
                            name: format!("migration l{lease}"),
                        });
                    }
                }
                self.running.insert(
                    *lease,
                    Episode {
                        device,
                        session,
                        class,
                        slo,
                        ready_ts,
                        start_ts: ts,
                        lo: range.lo,
                        hi: range.hi,
                        resizes: 0,
                        preempted: false,
                        promoted,
                        evicted: false,
                    },
                );
                let _ = sm_demand;
                self.occ[device] += u64::from(width(range.lo, range.hi));
                self.residents[device] += 1;
                self.dirty[device] = true;
                self.waiting_dirty = true;
            }
            Command::Resize { lease, range } => {
                if let Some(ep) = self.running.get_mut(lease) {
                    let old = u64::from(width(ep.lo, ep.hi));
                    let new = u64::from(width(range.lo, range.hi));
                    let d = ep.device;
                    self.occ[d] = self.occ[d] - old + new;
                    ep.lo = range.lo;
                    ep.hi = range.hi;
                    ep.resizes += 1;
                    let (session, shrink) = (ep.session, new < old);
                    self.dirty[d] = true;
                    self.items.push(Item::Instant {
                        device: d,
                        session: Some(session),
                        name: format!("resize l{lease} sm[{}..{}]", range.lo, range.hi),
                        cname: Some(if shrink { "bad" } else { "good" }),
                        ts,
                        args: vec![
                            ("sm_lo", ArgValue::U64(u64::from(range.lo))),
                            ("sm_hi", ArgValue::U64(u64::from(range.hi))),
                        ],
                    });
                }
            }
            Command::Preempt { lease } => {
                if let Some(ep) = self.running.get_mut(lease) {
                    ep.preempted = true;
                    let (d, session) = (ep.device, ep.session);
                    self.items.push(Item::Instant {
                        device: d,
                        session: Some(session),
                        name: format!("preempt l{lease}"),
                        cname: Some("terrible"),
                        ts,
                        args: Vec::new(),
                    });
                }
            }
            Command::PromoteStarved { lease } => {
                if let Some(r) = self.ready.get_mut(lease) {
                    r.promoted = true;
                    let session = r.session;
                    let device = self.device_of_session(session);
                    self.items.push(Item::Instant {
                        device,
                        session: Some(session),
                        name: format!("promote-starved l{lease}"),
                        cname: Some("good"),
                        ts,
                        args: Vec::new(),
                    });
                }
            }
            Command::Evict { lease } => {
                if let Some(ep) = self.running.get_mut(lease) {
                    ep.evicted = true;
                    let (d, session) = (ep.device, ep.session);
                    self.items.push(Item::Instant {
                        device: d,
                        session: Some(session),
                        name: format!("evict l{lease}"),
                        cname: Some("bad"),
                        ts,
                        args: Vec::new(),
                    });
                }
            }
            Command::RejectOverloaded {
                session,
                lease,
                scope,
                retry_after_ms,
            } => {
                self.items.push(Item::Instant {
                    device,
                    session: None,
                    name: match lease {
                        Some(l) => format!("shed {scope:?} s{session} l{l}"),
                        None => format!("shed {scope:?} s{session}"),
                    },
                    cname: Some("terrible"),
                    ts,
                    args: vec![("retry_after_ms", ArgValue::U64(*retry_after_ms))],
                });
            }
            Command::Reap { session } => {
                let device = self.device_of_session(*session);
                self.items.push(Item::Instant {
                    device,
                    session: None,
                    name: format!("reap s{session}"),
                    cname: None,
                    ts,
                    args: Vec::new(),
                });
            }
        }
    }

    /// Emits the queued + running slices of a finished (or truncated)
    /// episode and updates the device counters.
    fn close_episode(&mut self, lease: u64, ep: Episode, ts: Tick, ok: bool, truncated: bool) {
        if ep.start_ts > ep.ready_ts {
            self.items.push(Item::Slice {
                device: ep.device,
                session: ep.session,
                name: format!("queued l{lease}"),
                cat: slo_cat(ep.slo),
                cname: "white",
                ts: ep.ready_ts,
                dur: ep.start_ts - ep.ready_ts,
                args: vec![("lease", ArgValue::U64(lease))],
            });
        }
        let mut args = vec![
            ("lease", ArgValue::U64(lease)),
            ("class", ArgValue::Str(format!("{:?}", ep.class))),
            ("sm_lo", ArgValue::U64(u64::from(ep.lo))),
            ("sm_hi", ArgValue::U64(u64::from(ep.hi))),
            ("resizes", ArgValue::U64(u64::from(ep.resizes))),
            ("ok", ArgValue::Bool(ok)),
        ];
        if ep.preempted {
            args.push(("preempted", ArgValue::Bool(true)));
        }
        if ep.promoted {
            args.push(("promoted", ArgValue::Bool(true)));
        }
        if ep.evicted {
            args.push(("evicted", ArgValue::Bool(true)));
        }
        if truncated {
            args.push(("truncated", ArgValue::Bool(true)));
        }
        self.items.push(Item::Slice {
            device: ep.device,
            session: ep.session,
            name: format!("l{lease} {:?} sm[{}..{}]", ep.class, ep.lo, ep.hi),
            cat: slo_cat(ep.slo),
            cname: if ep.evicted { "bad" } else { slo_cname(ep.slo) },
            ts: ep.start_ts,
            dur: ts.saturating_sub(ep.start_ts),
            args,
        });
        self.occ[ep.device] = self.occ[ep.device].saturating_sub(u64::from(width(ep.lo, ep.hi)));
        self.residents[ep.device] = self.residents[ep.device].saturating_sub(1);
        self.dirty[ep.device] = true;
        self.last_run.insert(
            lease,
            LastRun {
                device: ep.device,
                end_ts: ts,
                evicted: ep.evicted,
            },
        );
    }

    fn end_batch(&mut self, ts: Tick) {
        for d in 0..self.devices.len() {
            if self.dirty[d] {
                self.dirty[d] = false;
                self.items.push(Item::Counter {
                    device: d,
                    name: "sm_occupancy",
                    ts,
                    value: self.occ[d],
                });
                self.items.push(Item::Counter {
                    device: d,
                    name: "residents",
                    ts,
                    value: self.residents[d],
                });
            }
        }
        if self.waiting_dirty {
            self.waiting_dirty = false;
            self.items.push(Item::Counter {
                device: 0,
                name: "ready_waiting",
                ts,
                value: self.ready.len() as u64,
            });
        }
    }

    fn finish(mut self) -> Trace {
        // Truncate whatever is still open at the end of the recording.
        let end = self.end_ts;
        let running: Vec<(u64, Episode)> = std::mem::take(&mut self.running).into_iter().collect();
        for (lease, ep) in running {
            self.close_episode(lease, ep, end, false, true);
        }
        let pending: Vec<(u64, Ready)> = std::mem::take(&mut self.ready).into_iter().collect();
        for (lease, r) in pending {
            let device = self.device_of_session(r.session);
            let slo = self.session_slo(r.session);
            self.items.push(Item::Slice {
                device,
                session: r.session,
                name: format!("queued l{lease}"),
                cat: slo_cat(slo),
                cname: "white",
                ts: r.ts,
                dur: end.saturating_sub(r.ts),
                args: vec![
                    ("lease", ArgValue::U64(lease)),
                    ("truncated", ArgValue::Bool(true)),
                ],
            });
        }

        // Sort data items by timestamp up front (stable, so same-tick
        // items keep build order) — both the emission order and the
        // greedy lane assignment below depend on it.
        let mut items = std::mem::take(&mut self.items);
        items.sort_by_key(|i| match i {
            Item::Slice { ts, .. }
            | Item::Instant { ts, .. }
            | Item::Counter { ts, .. }
            | Item::Flow { ts, .. } => *ts,
        });

        // Track assignment: tid 0 is the device's arbiter track; each
        // session gets one or more lanes after it, in ascending
        // session-id order (external ids — never interner slot order).
        // A session with concurrent leases would overlap its slices on a
        // single track, so slices are first-fit packed into lanes: a
        // slice takes the first lane whose previous slice has ended.
        // Sessions with one launch in flight at a time (the runtime
        // invariant) always get exactly one lane.
        let mut lanes: BTreeMap<(usize, u64), Vec<Tick>> = BTreeMap::new();
        let mut lane_of: Vec<u32> = vec![0; items.len()];
        for (i, item) in items.iter().enumerate() {
            match item {
                Item::Slice {
                    device,
                    session,
                    ts,
                    dur,
                    ..
                } => {
                    let ends = lanes.entry((*device, *session)).or_default();
                    let end = ts + dur;
                    let mut lane = None;
                    for (k, e) in ends.iter_mut().enumerate() {
                        if *e <= *ts {
                            *e = end;
                            lane = Some(k);
                            break;
                        }
                    }
                    let k = lane.unwrap_or_else(|| {
                        ends.push(end);
                        ends.len() - 1
                    });
                    lane_of[i] = k as u32;
                }
                Item::Instant {
                    device,
                    session: Some(s),
                    ..
                }
                | Item::Flow {
                    device, session: s, ..
                } => {
                    // Instants and flow endpoints live on the session's
                    // first lane; make sure the session has a track even
                    // if it never produced a slice.
                    lanes.entry((*device, *s)).or_default();
                }
                _ => {}
            }
        }
        // First tid of each session's lane block, per device.
        let mut base: BTreeMap<(usize, u64), u32> = BTreeMap::new();
        let mut next: Vec<u32> = vec![1; self.devices.len()];
        for ((d, s), ends) in &lanes {
            base.insert((*d, *s), next[*d]);
            next[*d] += ends.len().max(1) as u32;
        }
        let tid_of = |device: usize, session: Option<u64>| -> u32 {
            match session {
                Some(s) => base.get(&(device, s)).copied().unwrap_or(0),
                None => 0,
            }
        };

        let mut events = Vec::with_capacity(items.len() + 8);
        // Metadata: device processes and track names.
        for (d, cfg) in self.devices.iter().enumerate() {
            events.push(TraceEvent {
                name: "process_name".into(),
                cat: "__metadata".into(),
                ph: 'M',
                ts: 0,
                dur: None,
                pid: d as u32,
                tid: 0,
                id: None,
                bind_enclosing: false,
                cname: None,
                args: vec![(
                    "name",
                    ArgValue::Str(format!("device {d} \u{b7} {}", cfg.name)),
                )],
            });
            events.push(TraceEvent {
                name: "thread_name".into(),
                cat: "__metadata".into(),
                ph: 'M',
                ts: 0,
                dur: None,
                pid: d as u32,
                tid: 0,
                id: None,
                bind_enclosing: false,
                cname: None,
                args: vec![("name", ArgValue::Str("arbiter".into()))],
            });
            for ((dev, session), ends) in &lanes {
                if *dev != d {
                    continue;
                }
                let slo = self.session_slo(*session);
                let block = base[&(*dev, *session)];
                for lane in 0..ends.len().max(1) as u32 {
                    let name = if lane == 0 {
                        format!("session {session} [{}]", slo_cat(slo))
                    } else {
                        format!("session {session} [{}] lane {lane}", slo_cat(slo))
                    };
                    events.push(TraceEvent {
                        name: "thread_name".into(),
                        cat: "__metadata".into(),
                        ph: 'M',
                        ts: 0,
                        dur: None,
                        pid: d as u32,
                        tid: block + lane,
                        id: None,
                        bind_enclosing: false,
                        cname: None,
                        args: vec![("name", ArgValue::Str(name))],
                    });
                }
            }
        }

        for (i, item) in items.into_iter().enumerate() {
            events.push(match item {
                Item::Slice {
                    device,
                    session,
                    name,
                    cat,
                    cname,
                    ts,
                    dur,
                    args,
                } => TraceEvent {
                    name,
                    cat: cat.into(),
                    ph: 'X',
                    ts,
                    dur: Some(dur),
                    pid: device as u32,
                    tid: tid_of(device, Some(session)) + lane_of[i],
                    id: None,
                    bind_enclosing: false,
                    cname: Some(cname),
                    args,
                },
                Item::Instant {
                    device,
                    session,
                    name,
                    cname,
                    ts,
                    args,
                } => TraceEvent {
                    name,
                    cat: "arbiter".into(),
                    ph: 'i',
                    ts,
                    dur: None,
                    pid: device as u32,
                    tid: tid_of(device, session),
                    id: None,
                    bind_enclosing: false,
                    cname,
                    args,
                },
                Item::Counter {
                    device,
                    name,
                    ts,
                    value,
                } => TraceEvent {
                    name: name.into(),
                    cat: "counter".into(),
                    ph: 'C',
                    ts,
                    dur: None,
                    pid: device as u32,
                    tid: 0,
                    id: None,
                    bind_enclosing: false,
                    cname: None,
                    args: vec![("value", ArgValue::U64(value))],
                },
                Item::Flow {
                    device,
                    session,
                    start,
                    id,
                    ts,
                    name,
                } => TraceEvent {
                    name,
                    cat: "migration".into(),
                    ph: if start { 's' } else { 'f' },
                    ts,
                    dur: None,
                    pid: device as u32,
                    tid: tid_of(device, Some(session)),
                    id: Some(id),
                    bind_enclosing: !start,
                    cname: None,
                    args: Vec::new(),
                },
            });
        }
        Trace { events }
    }
}

/// Exports `log` as Perfetto JSON and writes it to `path`.
pub fn export_event_log_to_file(log: &EventLog, path: &std::path::Path) -> Result<(), String> {
    let trace = trace_event_log(log)?;
    std::fs::write(path, trace.to_json()).map_err(|e| format!("write {}: {e}", path.display()))
}

/// Exports `log` as Perfetto JSON and writes it to `path`.
pub fn export_placement_log_to_file(
    log: &PlacementLog,
    path: &std::path::Path,
) -> Result<(), String> {
    let trace = trace_placement_log(log)?;
    std::fs::write(path, trace.to_json()).map_err(|e| format!("write {}: {e}", path.display()))
}
