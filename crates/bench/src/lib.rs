//! # slate-bench
//!
//! Criterion benchmarks for the Slate reproduction. One bench target per
//! regenerated paper artefact — `fig1_stream_scaling`, `table2_profiles`,
//! `fig5_task_size`, `fig7_pairings` — each of which re-runs the
//! corresponding experiment (asserting its shape checks) before measuring
//! the simulator's evaluation cost, plus `micro_substrate` covering the
//! framework's hot paths: task-queue atomics under contention, the injected
//! index-reconstruction loop, the source scanner/injector, and the engine's
//! event processing.
//!
//! Run with `cargo bench --workspace`.
