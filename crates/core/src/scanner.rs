//! A minimal CUDA-source scanner (the prototype's FLEX stage, §IV-B).
//!
//! The Slate daemon receives user device code as text and must locate
//! `__global__` kernel definitions and every use of the built-in variables
//! `blockIdx` and `gridDim` so the injector can rewrite them. This module
//! is a hand-rolled lexer with just enough C++ awareness to do that
//! robustly: it skips string/char literals and both comment styles, tracks
//! brace depth to find function bodies, and tokenises identifiers so
//! `myblockIdx` is not mistaken for `blockIdx`.

/// A located token of interest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// The spanned text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// A `__global__` kernel found in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelDef {
    /// Kernel name.
    pub name: String,
    /// Span of the name identifier.
    pub name_span: Span,
    /// Span of the parameter list, excluding the parentheses.
    pub params_span: Span,
    /// Span of the body, excluding the outer braces.
    pub body_span: Span,
    /// Spans of `blockIdx` identifiers inside the body.
    pub block_idx_uses: Vec<Span>,
    /// Spans of `gridDim` identifiers inside the body.
    pub grid_dim_uses: Vec<Span>,
}

/// Lexer over raw source bytes.
struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(Span),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Other,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    /// Skips whitespace, comments and literals; returns the next token.
    fn next(&mut self) -> Option<(usize, Tok)> {
        loop {
            let b = *self.src.get(self.pos)?;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.src.get(self.pos + 1) == Some(&b'*') => {
                    self.pos += 2;
                    while self.pos + 1 < self.src.len()
                        && !(self.src[self.pos] == b'*' && self.src[self.pos + 1] == b'/')
                    {
                        self.pos += 1;
                    }
                    self.pos = (self.pos + 2).min(self.src.len());
                }
                b'"' | b'\'' => {
                    let quote = b;
                    self.pos += 1;
                    while self.pos < self.src.len() && self.src[self.pos] != quote {
                        if self.src[self.pos] == b'\\' {
                            self.pos += 1;
                        }
                        self.pos += 1;
                    }
                    self.pos = (self.pos + 1).min(self.src.len());
                }
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                    let start = self.pos;
                    while self
                        .pos
                        .checked_sub(0)
                        .and_then(|p| self.src.get(p))
                        .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
                    {
                        self.pos += 1;
                    }
                    return Some((
                        start,
                        Tok::Ident(Span {
                            start,
                            end: self.pos,
                        }),
                    ));
                }
                b'(' => {
                    self.pos += 1;
                    return Some((self.pos - 1, Tok::LParen));
                }
                b')' => {
                    self.pos += 1;
                    return Some((self.pos - 1, Tok::RParen));
                }
                b'{' => {
                    self.pos += 1;
                    return Some((self.pos - 1, Tok::LBrace));
                }
                b'}' => {
                    self.pos += 1;
                    return Some((self.pos - 1, Tok::RBrace));
                }
                _ => {
                    self.pos += 1;
                    return Some((self.pos - 1, Tok::Other));
                }
            }
        }
    }
}

/// Scans `src` for `__global__` kernel definitions.
pub fn scan_kernels(src: &str) -> Vec<KernelDef> {
    let mut lex = Lexer::new(src);
    let mut toks: Vec<(usize, Tok)> = Vec::new();
    while let Some(t) = lex.next() {
        toks.push(t);
    }

    let mut kernels = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let is_global = matches!(&toks[i].1, Tok::Ident(s) if s.text(src) == "__global__");
        if !is_global {
            i += 1;
            continue;
        }
        // Find the kernel name: the last identifier before the '('.
        let mut j = i + 1;
        let mut name: Option<Span> = None;
        while j < toks.len() {
            match &toks[j].1 {
                Tok::Ident(s) => name = Some(s.clone()),
                Tok::LParen => break,
                _ => {}
            }
            j += 1;
        }
        let (Some(name_span), true) = (name, j < toks.len()) else {
            i += 1;
            continue;
        };
        // Parameter list: up to the matching ')'.
        let lparen = toks[j].0;
        let mut depth = 1;
        let mut k = j + 1;
        while k < toks.len() && depth > 0 {
            match toks[k].1 {
                Tok::LParen => depth += 1,
                Tok::RParen => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        if depth != 0 {
            break; // unbalanced; stop scanning
        }
        let rparen = toks[k - 1].0;
        // Body: next '{' to its matching '}'. A ';' before the '{' means
        // this was only a declaration.
        let mut b = k;
        let mut declaration = false;
        while b < toks.len() && toks[b].1 != Tok::LBrace {
            if toks[b].1 == Tok::Other && src.as_bytes().get(toks[b].0) == Some(&b';') {
                declaration = true;
                break;
            }
            b += 1;
        }
        if declaration || b == toks.len() {
            i = k;
            continue; // declaration without body
        }
        let lbrace = toks[b].0;
        let mut bdepth = 1;
        let mut e = b + 1;
        let mut block_idx_uses = Vec::new();
        let mut grid_dim_uses = Vec::new();
        while e < toks.len() && bdepth > 0 {
            match &toks[e].1 {
                Tok::LBrace => bdepth += 1,
                Tok::RBrace => bdepth -= 1,
                Tok::Ident(s) => match s.text(src) {
                    "blockIdx" => block_idx_uses.push(s.clone()),
                    "gridDim" => grid_dim_uses.push(s.clone()),
                    _ => {}
                },
                _ => {}
            }
            e += 1;
        }
        if bdepth != 0 {
            break;
        }
        let rbrace = toks[e - 1].0;
        kernels.push(KernelDef {
            name: name_span.text(src).to_string(),
            name_span,
            params_span: Span {
                start: lparen + 1,
                end: rparen,
            },
            body_span: Span {
                start: lbrace + 1,
                end: rbrace,
            },
            block_idx_uses,
            grid_dim_uses,
        });
        i = e;
    }
    kernels
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
#include <cuda.h>
// a host helper mentioning blockIdx in a comment
static int helper(int x) { return x + 1; }

__global__ void scale(float* out, const float* in, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) out[i] = in[i] * 2.0f; // blockIdx in comment again
}

__global__ void
tile_kernel (float *a) {
    int bx = blockIdx.x, by = blockIdx.y;
    int w = gridDim.x;
    const char* s = "gridDim inside a string";
    a[by * w + bx] = 0.f;
}

__device__ int not_a_kernel(int blockIdxLike) { return blockIdxLike; }
"#;

    #[test]
    fn finds_both_kernels() {
        let ks = scan_kernels(SRC);
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[0].name, "scale");
        assert_eq!(ks[1].name, "tile_kernel");
    }

    #[test]
    fn counts_builtin_uses_in_bodies_only() {
        let ks = scan_kernels(SRC);
        assert_eq!(ks[0].block_idx_uses.len(), 1, "comment mention ignored");
        assert_eq!(ks[0].grid_dim_uses.len(), 0);
        assert_eq!(ks[1].block_idx_uses.len(), 2);
        assert_eq!(ks[1].grid_dim_uses.len(), 1, "string literal ignored");
    }

    #[test]
    fn spans_point_at_the_identifiers() {
        let ks = scan_kernels(SRC);
        for s in &ks[1].block_idx_uses {
            assert_eq!(s.text(SRC), "blockIdx");
        }
        assert_eq!(ks[1].grid_dim_uses[0].text(SRC), "gridDim");
    }

    #[test]
    fn params_and_body_spans_are_well_formed() {
        let ks = scan_kernels(SRC);
        let p = ks[0].params_span.text(SRC);
        assert!(p.contains("float* out") && p.contains("int n"));
        let b = ks[0].body_span.text(SRC);
        assert!(b.contains("out[i] = in[i]"));
        assert!(!b.contains('}'), "outer braces excluded: {b}");
    }

    #[test]
    fn similar_identifiers_not_confused() {
        let ks = scan_kernels(SRC);
        // not_a_kernel is __device__, and blockIdxLike is not blockIdx.
        assert!(ks.iter().all(|k| k.name != "not_a_kernel"));
    }

    #[test]
    fn declaration_without_body_is_skipped() {
        let src = "__global__ void fwd(int x);\n__global__ void real(int x) { blockIdx.x; }";
        let ks = scan_kernels(src);
        assert_eq!(ks.len(), 1);
        assert_eq!(ks[0].name, "real");
    }

    #[test]
    fn nested_braces_in_body() {
        let src = "__global__ void k() { if (1) { for(;;) { blockIdx.x; } } int z; }";
        let ks = scan_kernels(src);
        assert_eq!(ks.len(), 1);
        assert_eq!(ks[0].block_idx_uses.len(), 1);
        assert!(ks[0].body_span.text(src).contains("int z"));
    }

    #[test]
    fn empty_source() {
        assert!(scan_kernels("").is_empty());
        assert!(scan_kernels("int main() { return 0; }").is_empty());
    }
}
