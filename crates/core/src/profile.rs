//! Kernel profiling and the profile table (paper §IV-B, Table V "offline").
//!
//! The daemon profiles each kernel on its first run (solo, under normal
//! hardware scheduling — the nvprof flow of §V-A) and stores the measured
//! GFLOP/s and global bandwidth in a table it consults online; the lookup
//! itself is negligible. Profiles classify the kernel
//! ([`WorkloadClass`]) and record its SM demand for the partitioner.
//! The table persists as JSON between daemon runs.

use crate::classify::{classify_measured, WorkloadClass};
use serde::{Deserialize, Serialize};
use slate_gpu_sim::device::{DeviceConfig, SmRange};
use slate_gpu_sim::engine::{Engine, Event, SliceSpec};
use slate_gpu_sim::model;
use slate_gpu_sim::perf::{ExecMode, KernelPerf};
use std::collections::BTreeMap;
use std::path::Path;

/// Fraction of the full-device rate that defines the SM-demand knee.
pub const DEMAND_FRACTION: f64 = 0.9;

/// Task sizes the autotuner evaluates (the paper's Fig. 5 sweep).
pub const TASK_SIZE_CANDIDATES: [u32; 6] = [1, 2, 5, 10, 20, 50];

/// One kernel's stored profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Kernel name.
    pub name: String,
    /// Measured solo compute rate (GFLOP/s).
    pub gflops: f64,
    /// Measured solo global load+store bandwidth (GB/s).
    pub bandwidth_gbs: f64,
    /// Measured solo block completion rate (blocks/s).
    pub block_rate: f64,
    /// Derived workload class.
    pub class: WorkloadClass,
    /// SMs needed to reach [`DEMAND_FRACTION`] of the full-device Slate
    /// rate — the partitioner's share for this kernel.
    pub sm_demand: u32,
    /// Task size that minimised this kernel's solo Slate time during
    /// first-run profiling (the Fig. 5 sweep: small tasks pay atomics,
    /// large tasks pay imbalance).
    pub best_task_size: u32,
}

/// Measures a kernel's solo Slate time at one task size.
fn slate_solo_time(cfg: &DeviceConfig, perf: &KernelPerf, blocks: u64, task_size: u32) -> f64 {
    let mut engine = Engine::new(cfg.clone());
    let id = engine
        .add_slice(SliceSpec {
            perf: perf.clone(),
            sm_range: SmRange::all(cfg.num_sms),
            blocks,
            mode: ExecMode::SlateWorkers { task_size },
            extra_lead_s: 0.0,
            batch: 1,
            tag: 0,
        })
        .expect("autotune launch must be valid");
    let (t, _) = engine
        .run_until(|ev| matches!(ev, Event::SliceDrained(_)))
        .expect("autotune run completes");
    let _ = engine.remove_slice(id);
    t
}

/// Sweeps [`TASK_SIZE_CANDIDATES`] and returns the fastest task size for a
/// solo Slate run of `blocks` blocks.
pub fn autotune_task_size(cfg: &DeviceConfig, perf: &KernelPerf, blocks: u64) -> u32 {
    TASK_SIZE_CANDIDATES
        .into_iter()
        .min_by(|&a, &b| {
            slate_solo_time(cfg, perf, blocks, a).total_cmp(&slate_solo_time(cfg, perf, blocks, b))
        })
        .expect("candidates are non-empty")
}

/// Profiles a kernel by running a measurement slice solo on the simulated
/// device under hardware scheduling (first-run profiling).
pub fn profile_kernel(cfg: &DeviceConfig, perf: &KernelPerf, blocks: u64) -> KernelProfile {
    let mut engine = Engine::new(cfg.clone());
    let id = engine
        .add_slice(SliceSpec {
            perf: perf.clone(),
            sm_range: SmRange::all(cfg.num_sms),
            blocks,
            mode: ExecMode::Hardware,
            extra_lead_s: 0.0,
            batch: 1,
            tag: 0,
        })
        .expect("profiling launch must be valid");
    engine
        .run_until(|ev| matches!(ev, Event::SliceDrained(_)))
        .expect("profiling run completes");
    let rep = engine.remove_slice(id);
    let gflops = rep.gflops();
    let gbs = rep.request_bw();
    KernelProfile {
        name: perf.name.clone(),
        gflops,
        bandwidth_gbs: gbs,
        block_rate: rep.blocks_done as f64 / rep.active_s.max(1e-12),
        class: classify_measured(gflops, gbs),
        sm_demand: model::sm_demand(
            cfg,
            perf,
            ExecMode::SlateWorkers { task_size: 10 },
            DEMAND_FRACTION,
        ),
        best_task_size: autotune_task_size(cfg, perf, blocks),
    }
}

/// The daemon's kernel profile table.
///
/// Keyed by an ordered map, not a hash map: profile estimates feed
/// scheduling decisions (admission hints, placement load), so any
/// iteration over the table — and the saved JSON — must be deterministic.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProfileTable {
    entries: BTreeMap<String, KernelProfile>,
}

impl ProfileTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a kernel by name.
    pub fn get(&self, name: &str) -> Option<&KernelProfile> {
        self.entries.get(name)
    }

    /// Inserts or replaces a profile.
    pub fn insert(&mut self, p: KernelProfile) {
        self.entries.insert(p.name.clone(), p);
    }

    /// Returns the profile, measuring it first if absent (the first-run
    /// profiling flow).
    pub fn get_or_profile(
        &mut self,
        cfg: &DeviceConfig,
        perf: &KernelPerf,
        blocks: u64,
    ) -> &KernelProfile {
        if !self.entries.contains_key(&perf.name) {
            let p = profile_kernel(cfg, perf, blocks);
            self.entries.insert(perf.name.clone(), p);
        }
        &self.entries[&perf.name]
    }

    /// Estimates the solo execution time of `blocks` blocks of a kernel in
    /// whole milliseconds (rounded up, minimum 1) from its measured solo
    /// block-completion rate. Returns `None` for unprofiled kernels or
    /// degenerate rates — callers must then admit optimistically. Admission
    /// control uses this to compute `retry_after_ms` hints and to reject
    /// deadline-carrying launches whose queue wait already exceeds the
    /// deadline.
    pub fn estimate_solo_ms(&self, name: &str, blocks: u64) -> Option<u64> {
        let p = self.entries.get(name)?;
        if !(p.block_rate.is_finite() && p.block_rate > 0.0) {
            return None;
        }
        let ms = (blocks as f64 / p.block_rate * 1e3).ceil();
        Some((ms as u64).max(1))
    }

    /// Number of stored profiles.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Persists the table as JSON.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self).expect("profile table serializes");
        std::fs::write(path, json)
    }

    /// Loads a table from JSON.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slate_kernels::workload::Benchmark;

    #[test]
    fn profiles_reproduce_table2_classes() {
        let cfg = DeviceConfig::titan_xp();
        let expect = [
            (Benchmark::BS, WorkloadClass::MM),
            (Benchmark::GS, WorkloadClass::MM),
            (Benchmark::MM, WorkloadClass::MM),
            (Benchmark::RG, WorkloadClass::LC),
            (Benchmark::TR, WorkloadClass::HM),
        ];
        for (b, class) in expect {
            let app = b.app();
            let p = profile_kernel(&cfg, &app.perf, app.blocks_per_launch);
            assert_eq!(p.class, class, "{b:?} measured {p:?}");
        }
    }

    #[test]
    fn measured_figures_match_paper_within_15_percent() {
        let cfg = DeviceConfig::titan_xp();
        for b in Benchmark::ALL {
            let app = b.app();
            let p = profile_kernel(&cfg, &app.perf, app.blocks_per_launch);
            let (gf_ref, gb_ref) = b.paper_reference();
            if gf_ref > 1.0 {
                let err = (p.gflops - gf_ref).abs() / gf_ref;
                assert!(err < 0.15, "{b:?} GFLOP/s {} vs {}", p.gflops, gf_ref);
            }
            let err = (p.bandwidth_gbs - gb_ref).abs() / gb_ref;
            assert!(err < 0.15, "{b:?} GB/s {} vs {}", p.bandwidth_gbs, gb_ref);
        }
    }

    #[test]
    fn rg_demand_is_a_fraction_of_the_device() {
        let cfg = DeviceConfig::titan_xp();
        let app = Benchmark::RG.app();
        let p = profile_kernel(&cfg, &app.perf, app.blocks_per_launch);
        assert!(
            (10..=16).contains(&p.sm_demand),
            "RG should saturate around 15 SMs, got {}",
            p.sm_demand
        );
    }

    #[test]
    fn autotuner_matches_fig5_preferences() {
        // BS prefers task size 1 (imbalance dominates); GS prefers a
        // grouped size (atomics dominate) — the paper's Fig. 5 story.
        let cfg = DeviceConfig::titan_xp();
        let bs = Benchmark::BS.app();
        let bs_best = autotune_task_size(&cfg, &bs.perf, bs.blocks_per_launch / bs.batch as u64);
        assert_eq!(bs_best, 1, "BS is imbalance-bound");
        let gs = Benchmark::GS.app();
        let gs_best = autotune_task_size(&cfg, &gs.perf, gs.blocks_per_launch / gs.batch as u64);
        assert!(gs_best >= 5, "GS is atomic-bound, got {gs_best}");
    }

    #[test]
    fn get_or_profile_measures_once() {
        let cfg = DeviceConfig::titan_xp();
        let app = Benchmark::BS.app();
        let mut t = ProfileTable::new();
        assert!(t.is_empty());
        let first = t
            .get_or_profile(&cfg, &app.perf, app.blocks_per_launch)
            .clone();
        let second = t
            .get_or_profile(&cfg, &app.perf, app.blocks_per_launch)
            .clone();
        assert_eq!(first, second);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn table_roundtrips_through_json() {
        let cfg = DeviceConfig::titan_xp();
        let mut t = ProfileTable::new();
        for b in Benchmark::ALL {
            let app = b.app();
            t.get_or_profile(&cfg, &app.perf, app.blocks_per_launch);
        }
        let dir = std::env::temp_dir().join("slate-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profiles.json");
        t.save(&path).unwrap();
        let loaded = ProfileTable::load(&path).unwrap();
        assert_eq!(loaded.len(), t.len());
        for b in Benchmark::ALL {
            let name = b.app().perf.name;
            let (l, o) = (loaded.get(&name).unwrap(), t.get(&name).unwrap());
            assert_eq!(l.name, o.name);
            assert_eq!(l.class, o.class);
            assert_eq!(l.sm_demand, o.sm_demand);
            // Floats may lose the last ulp through the JSON text form.
            assert!((l.gflops - o.gflops).abs() < 1e-9);
            assert!((l.bandwidth_gbs - o.bandwidth_gbs).abs() < 1e-9);
        }
        std::fs::remove_file(&path).ok();
    }
}
