//! Vanilla CUDA runtime baseline.
//!
//! Each process owns its own CUDA context. Without MPS, contexts cannot
//! execute concurrently: the driver time-slices the device between them at
//! kernel-to-completion granularity, paying a context switch and scheduling
//! waste on every alternation (paper §V-A2: "Vanilla CUDA uses time
//! slicing ... allocates all SM resources to one and switches to another
//! the next time"). This is the normalization baseline of Fig. 7.

use crate::runtime::{RunOutcome, Runtime};
use crate::serial::{run_serialized, SerialOverheads};
use slate_gpu_sim::device::DeviceConfig;
use slate_kernels::workload::AppSpec;

/// Fraction of a launch's duration wasted by driver time-slice arbitration
/// when alternating between contending contexts. Calibrated so MPS (which
/// avoids it) comes out ~6% ahead on paired workloads, matching §V-E.
pub const TIMESLICE_WASTE: f64 = 0.09;

/// The vanilla CUDA runtime.
#[derive(Debug, Clone)]
pub struct CudaRuntime {
    cfg: DeviceConfig,
}

impl CudaRuntime {
    /// Creates the runtime for a device.
    pub fn new(cfg: DeviceConfig) -> Self {
        Self { cfg }
    }

    fn overheads(&self) -> SerialOverheads {
        SerialOverheads {
            label: "CUDA".into(),
            ctx_switch_s: self.cfg.ctx_switch_s,
            timeslice_waste: TIMESLICE_WASTE,
            per_launch_s: 0.0,
            contended_penalty: 0.0,
            session_setup_s: 0.0,
            leftover_overlap: false,
        }
    }
}

impl Runtime for CudaRuntime {
    fn label(&self) -> &str {
        "CUDA"
    }

    fn device(&self) -> &DeviceConfig {
        &self.cfg
    }

    fn run(&self, apps: &[AppSpec]) -> RunOutcome {
        run_serialized(&self.cfg, &self.overheads(), apps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slate_kernels::workload::Benchmark;

    #[test]
    fn solo_run_has_no_multiprocessing_tax() {
        let rt = CudaRuntime::new(DeviceConfig::titan_xp());
        let app = Benchmark::MM.app().scaled_down(100);
        let out = rt.run(std::slice::from_ref(&app));
        // Kernel busy time ~ closed-form estimate x launches.
        let est = slate_gpu_sim::model::estimate_duration(
            rt.device(),
            &app.perf,
            app.blocks_per_launch,
            30,
            slate_gpu_sim::perf::ExecMode::Hardware,
        );
        let expect = est * app.launches as f64;
        let got = out.apps[0].kernel_busy_s;
        assert!((got - expect).abs() / expect < 0.05, "{got} vs {expect}");
    }

    #[test]
    fn pairs_pay_the_timeslice_tax() {
        let rt = CudaRuntime::new(DeviceConfig::titan_xp());
        let a = Benchmark::BS.app().scaled_down(300);
        let b = Benchmark::TR.app().scaled_down(300);
        let sa = rt.solo_time(&a);
        let sb = rt.solo_time(&b);
        let pair = rt.run(&[a, b]);
        // Strictly worse than perfect serialization of the kernel phases.
        assert!(pair.makespan_s > (sa + sb) * 0.7);
        let antt = pair.antt(&[sa, sb]);
        assert!(antt > 1.2, "paired apps are much slower than solo: {antt}");
    }
}
