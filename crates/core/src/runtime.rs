//! The Slate runtime: workload-aware multiprocess scheduling over the
//! simulated device (paper §III–§IV).
//!
//! The runtime drives the same application lifecycle as the baselines
//! (setup → H2D → kernel loop → D2H) but schedules kernels the Slate way:
//!
//! * every kernel runs **transformed** (persistent workers, in-order task
//!   queue — `ExecMode::SlateWorkers`), which alone buys the solo gains of
//!   §V-B;
//! * on its first sighting a kernel is **profiled** and classified; the
//!   profile table persists across the run;
//! * when one kernel is resident and another process has work ready, the
//!   **selection** policy (Table I) decides co-run vs solo; co-runners get
//!   disjoint SM partitions sized by their SM demands;
//! * on arrival and completion of co-runners the resident kernel is
//!   **dynamically resized** — its slice is torn down mid-flight and
//!   relaunched on the adjusted range with `slateIdx` progress carried
//!   over, exactly the dispatch-kernel mechanism;
//! * non-complementary processes alternate solo at launch granularity;
//! * client–daemon **communication** and one-time **injection/compilation**
//!   costs are charged per the measured fractions of §V-D.
//!
//! All of those *decisions* live in the shared
//! [`ArbiterCore`]; this module is a thin
//! driver that translates engine events (transfer completions, slice
//! drains) into arbiter [`ArbEvent`]s and executes the returned
//! [`Command`]s against the simulation engine. The daemon drives the same
//! core from wall-clock threads, so both frontends make identical
//! scheduling choices for the same workload trace.

use crate::arbiter::{ArbiterConfig, ArbiterCore, Command, Event as ArbEvent, EventLog};
use crate::backend::sim::{RelaunchPlan, ResizeOutcome, SimBackend};
use crate::feed::EventBatch;
use crate::placement::multi::{JobOutcome, MultiJob, MultiSim};
use crate::placement::{PlacementConfig, PlacementStats};
use crate::profile::ProfileTable;
use crate::transform::TransformedKernel;
use slate_baselines::runtime::{AppResult, RunOutcome, Runtime};
use slate_gpu_sim::device::{DeviceConfig, SmRange};
use slate_gpu_sim::engine::{Dir, Event, SliceId, SliceSpec, TimerId, TransferId};
use slate_gpu_sim::metrics::KernelMetrics;
use slate_gpu_sim::model;
use slate_gpu_sim::perf::ExecMode;
use slate_gpu_sim::trace::{Trace, TraceKind};
use slate_kernels::workload::{AppSpec, SloClass};

/// Tunable costs and feature switches (ablations flip the `enable_*`
/// flags; the defaults reproduce the paper's configuration).
#[derive(Debug, Clone)]
pub struct SlateOptions {
    /// Client-daemon communication cost as a fraction of kernel execution
    /// (paper §V-D: ~4% of application time on average).
    pub comm_fraction: f64,
    /// One-time code injection + NVRTC compilation cost per kernel source
    /// (paper §V-D: ~1.5% of application time).
    pub inject_per_source_s: f64,
    /// Daemon session establishment at the first API call of a process.
    pub session_setup_s: f64,
    /// Enable workload-aware co-running (selection policy + partitioning).
    pub enable_corun: bool,
    /// Enable dynamic resizing of the surviving kernel when a co-runner
    /// finishes (if disabled, the survivor keeps its partition).
    pub enable_resize: bool,
    /// Override every application's task size (`SLATE_ITERS`) — ablation
    /// knob behind the paper's Fig. 5.
    pub force_task_size: Option<u32>,
    /// Execute kernels under hardware block scheduling instead of Slate's
    /// transformed persistent workers — ablates the software scheduling
    /// (locality, setup amortisation) while keeping selection/partitioning.
    pub use_hardware_exec: bool,
    /// Use each kernel's autotuned task size from its profile instead of
    /// the application default (extension: the profiler already sweeps
    /// Fig. 5's candidates on the first run).
    pub autotune_task_size: bool,
    /// Starvation bound for the wait-aware selector, in simulated seconds.
    /// A process that has been ready longer than this refuses co-running
    /// and is dispatched solo ahead of queue order as soon as the device
    /// frees. `None` (the default) disables aging.
    pub starvation_bound_s: Option<f64>,
    /// SLO preemption bound, in simulated seconds. With it set, a
    /// latency-critical arrival (an [`AppSpec`] whose
    /// [`slo`](AppSpec::slo) is [`SloClass::LatencyCritical`]) displaces a
    /// best-effort resident through the retreat/resize path within this
    /// bound. `None` (the default) disables preemption.
    pub preempt_bound_s: Option<f64>,
}

impl Default for SlateOptions {
    fn default() -> Self {
        Self {
            comm_fraction: 0.02,
            inject_per_source_s: 0.25,
            session_setup_s: 0.05,
            enable_corun: true,
            enable_resize: true,
            force_task_size: None,
            use_hardware_exec: false,
            autotune_task_size: false,
            starvation_bound_s: None,
            preempt_bound_s: None,
        }
    }
}

impl SlateOptions {
    /// The arbiter configuration these options induce. The sim frontend
    /// never sets admission limits — processes are workloads, not hostile
    /// clients.
    fn arbiter_config(&self) -> ArbiterConfig {
        ArbiterConfig {
            enable_corun: self.enable_corun,
            enable_resize: self.enable_resize,
            starvation_bound_us: self.starvation_bound_s.map(|s| (s * 1e6).round() as u64),
            preempt_bound_us: self.preempt_bound_s.map(|s| (s * 1e6).round() as u64),
            limits: Default::default(),
        }
    }
}

/// The Slate runtime.
#[derive(Debug, Clone)]
pub struct SlateRuntime {
    cfg: DeviceConfig,
    opts: SlateOptions,
}

impl SlateRuntime {
    /// Creates a Slate runtime with default options.
    pub fn new(cfg: DeviceConfig) -> Self {
        Self::with_options(cfg, SlateOptions::default())
    }

    /// Creates a Slate runtime with explicit options (ablations).
    pub fn with_options(cfg: DeviceConfig, opts: SlateOptions) -> Self {
        Self { cfg, opts }
    }

    /// The options in effect.
    pub fn options(&self) -> &SlateOptions {
        &self.opts
    }

    /// Runs `apps` while recording every arbitration event batch, and
    /// returns the outcome together with the recorded [`EventLog`]. The
    /// log replays to the identical command sequence (see
    /// [`crate::arbiter::replay`]).
    pub fn run_recorded(&self, apps: &[AppSpec]) -> (RunOutcome, EventLog) {
        let mut sim = Sim::new(self.cfg.clone(), self.opts.clone(), apps);
        sim.arb.start_recording();
        let (out, log) = sim.run();
        (out, log.expect("recording was enabled"))
    }

    /// [`SlateRuntime::run_recorded`], plus a Perfetto trace of the run
    /// written to `path` ([`crate::trace`]): the runtime-side analogue of
    /// the daemon's [`crate::daemon::DaemonOptions::trace_path`] shutdown
    /// hook. Returns the outcome and log alongside any export error so a
    /// failed trace write never discards the run.
    pub fn run_traced(
        &self,
        apps: &[AppSpec],
        path: &std::path::Path,
    ) -> (RunOutcome, EventLog, Result<(), String>) {
        let (out, log) = self.run_recorded(apps);
        let written = crate::trace::export::export_event_log_to_file(&log, path);
        (out, log, written)
    }

    /// Runs `apps` across a fleet of `devices`, one [`SimBackend`] per
    /// device behind a [`crate::placement::PlacementLayer`] — the
    /// multi-device extension past the paper's single-GPU scope. Each app
    /// becomes one session with one launch covering its per-launch grid;
    /// profiling and classification use this runtime's configured device
    /// as the reference, and the per-core arbiters run under the same
    /// configuration [`SlateRuntime::run`] would use. `placement.arbiter`
    /// is overridden accordingly.
    pub fn run_placed(
        &self,
        devices: &[DeviceConfig],
        apps: &[AppSpec],
        placement: PlacementConfig,
    ) -> PlacedOutcome {
        assert!(!apps.is_empty(), "need at least one app");
        let mut table = ProfileTable::new();
        let config = PlacementConfig {
            arbiter: self.opts.arbiter_config(),
            ..placement
        };
        let mut fleet = MultiSim::new(devices.to_vec(), config);
        for (i, app) in apps.iter().enumerate() {
            let prof = table
                .get_or_profile(&self.cfg, &app.perf, app.blocks_per_launch)
                .clone();
            let blocks = app.blocks_per_launch.min(u32::MAX as u64) as u32;
            let kernel = TransformedKernel::new(std::sync::Arc::new(PerfOnlyKernel {
                name: app.perf.name.clone(),
                grid: slate_kernels::grid::GridDim::d1(blocks),
                perf: app.perf.clone(),
            }));
            let task_size = if self.opts.autotune_task_size {
                prof.best_task_size
            } else {
                self.opts.force_task_size.unwrap_or(app.task_size)
            };
            fleet.submit(MultiJob {
                session: i as u64,
                lease: i as u64,
                kernel,
                task_size,
                class: prof.class,
                sm_demand: prof.sm_demand,
                est_ms: table.estimate_solo_ms(&app.perf.name, app.blocks_per_launch),
            });
        }
        let drained = fleet.run(600_000);
        let outcomes = (0..apps.len()).map(|i| fleet.outcome(i as u64)).collect();
        PlacedOutcome {
            drained,
            outcomes,
            stats: fleet.stats(),
            migrations: fleet.migrations().to_vec(),
        }
    }
}

/// Result of a multi-device [`SlateRuntime::run_placed`] run.
#[derive(Debug)]
pub struct PlacedOutcome {
    /// Whether every submitted app reached a terminal outcome within the
    /// simulation bound.
    pub drained: bool,
    /// Per-app terminal outcome, in submission order (`None` only if the
    /// run timed out with the app still in flight).
    pub outcomes: Vec<Option<JobOutcome>>,
    /// Placement counters (sessions routed, rebalances, migrations).
    pub stats: PlacementStats,
    /// Migration audit trail: `(lease, src, dst, progress)`.
    pub migrations: Vec<(u64, usize, usize, u64)>,
}

/// A scheduling-only kernel stand-in: carries a launch grid and the
/// app's calibrated perf profile, with a no-op functional body. The sim
/// backends only consume the profile, so this is exactly what a placed
/// simulation needs.
struct PerfOnlyKernel {
    name: String,
    grid: slate_kernels::grid::GridDim,
    perf: slate_gpu_sim::perf::KernelPerf,
}

impl slate_kernels::kernel::GpuKernel for PerfOnlyKernel {
    fn name(&self) -> &str {
        &self.name
    }
    fn grid(&self) -> slate_kernels::grid::GridDim {
        self.grid
    }
    fn perf(&self) -> slate_gpu_sim::perf::KernelPerf {
        self.perf.clone()
    }
    fn run_block(&self, _block: slate_kernels::grid::BlockCoord) {}
}

impl Runtime for SlateRuntime {
    fn label(&self) -> &str {
        "Slate"
    }

    fn device(&self) -> &DeviceConfig {
        &self.cfg
    }

    fn run(&self, apps: &[AppSpec]) -> RunOutcome {
        Sim::new(self.cfg.clone(), self.opts.clone(), apps).run().0
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Setup,
    H2d,
    Ready,
    Running,
    D2h,
    Done,
}

struct Proc {
    app: AppSpec,
    phase: Phase,
    launches_done: u32,
    timer: Option<TimerId>,
    transfer: Option<TransferId>,
    end_s: f64,
    kernel_busy_s: f64,
    kernel_start_s: f64,
    kernel_end_s: f64,
    comm_s: f64,
    inject_s: f64,
    metrics: KernelMetrics,
    sm_demand: u32,
    task_size: u32,
    class: crate::classify::WorkloadClass,
}

/// A kernel currently resident on the device (execution mechanics; the
/// scheduling view lives in the arbiter core).
#[derive(Debug, Clone, Copy)]
struct Resident {
    proc: usize,
    slice: SliceId,
    range: SmRange,
}

struct Sim {
    cfg: DeviceConfig,
    opts: SlateOptions,
    /// The execution backend: owns the engine and carries out slice
    /// launches and §IV-C retreat/relaunches; the sim keeps transfer,
    /// timer and per-process bookkeeping on top.
    backend: SimBackend,
    procs: Vec<Proc>,
    residents: Vec<Resident>,
    trace: Trace,
    /// The shared arbitration core; process index doubles as both the
    /// session and lease id.
    arb: ArbiterCore,
    /// Reusable feed batch (events in, commands out) driving `arb`; the
    /// same batch type the daemon pools (see [`crate::feed`]).
    feed_scratch: EventBatch<Command>,
}

impl Sim {
    fn exec_mode_for(&self, proc: usize) -> ExecMode {
        if self.opts.use_hardware_exec {
            ExecMode::Hardware
        } else {
            ExecMode::SlateWorkers {
                task_size: self
                    .opts
                    .force_task_size
                    .unwrap_or(self.procs[proc].task_size),
            }
        }
    }

    fn new(cfg: DeviceConfig, opts: SlateOptions, apps: &[AppSpec]) -> Self {
        assert!(!apps.is_empty(), "need at least one app");
        let mut table = ProfileTable::new();
        let mut backend = SimBackend::new(cfg.clone());
        let mut procs: Vec<Proc> = apps
            .iter()
            .map(|app| {
                // First-run profiling and classification (offline per Table V).
                let prof = table
                    .get_or_profile(&cfg, &app.perf, app.blocks_per_launch)
                    .clone();
                let task_size = if opts.autotune_task_size {
                    prof.best_task_size
                } else {
                    app.task_size
                };
                Proc {
                    app: app.clone(),
                    phase: Phase::Setup,
                    launches_done: 0,
                    timer: None,
                    transfer: None,
                    end_s: 0.0,
                    kernel_busy_s: 0.0,
                    kernel_start_s: f64::INFINITY,
                    kernel_end_s: 0.0,
                    comm_s: 0.0,
                    inject_s: opts.inject_per_source_s
                        * app.kernel_sources as f64
                        * app.fixed_cost_scale,
                    metrics: KernelMetrics::new(&app.perf.name),
                    sm_demand: prof.sm_demand,
                    task_size,
                    class: prof.class,
                }
            })
            .collect();
        for p in &mut procs {
            // Setup covers host init, daemon session creation, and the
            // one-time injection + compilation of the kernel sources.
            let session = opts.session_setup_s * p.app.fixed_cost_scale;
            p.timer = Some(
                backend
                    .engine_mut()
                    .set_timer(p.app.host_setup_s + session + p.inject_s),
            );
        }
        let arb = ArbiterCore::new(cfg.clone(), opts.arbiter_config());
        Self {
            cfg,
            opts,
            backend,
            procs,
            residents: Vec::new(),
            trace: Trace::new(),
            arb,
            feed_scratch: EventBatch::new(),
        }
    }

    /// Engine time as the arbiter's logical microsecond tick.
    fn now_us(&self) -> u64 {
        (self.backend.engine().now() * 1e6).round() as u64
    }

    /// The `KernelReady` event for process `i`'s next launch.
    fn ready_event(&self, i: usize) -> ArbEvent {
        let p = &self.procs[i];
        ArbEvent::KernelReady {
            session: i as u64,
            lease: i as u64,
            class: p.class,
            sm_demand: p.sm_demand,
            pinned_solo: p.app.pinned_solo,
            deadline_ms: None,
        }
    }

    /// Feeds a batch of events to the arbiter and executes the returned
    /// commands, looping on any compensation events a command execution
    /// produces (a resize that raced with completion reports the kernel
    /// finished, which may trigger further scheduling). The loop drives
    /// one runtime-owned [`EventBatch`] — events in, commands out,
    /// compensation events written straight back into the event buffer —
    /// so repeated feeds reuse the same capacity instead of allocating
    /// per round.
    fn feed(&mut self, events: &[ArbEvent]) {
        let mut batch = std::mem::take(&mut self.feed_scratch);
        batch.clear();
        batch.events.extend_from_slice(events);
        while !batch.events.is_empty() {
            let now = self.now_us();
            self.arb.feed_into(now, &batch.events, &mut batch.replies);
            batch.events.clear();
            let EventBatch { events, replies } = &mut batch;
            self.apply_into(replies, events);
        }
        self.feed_scratch = batch;
    }

    /// Executes arbiter commands against the engine, appending
    /// compensation events for outcomes the core could not see yet.
    fn apply_into(&mut self, cmds: &[Command], compensation: &mut Vec<ArbEvent>) {
        for cmd in cmds {
            match *cmd {
                Command::Dispatch { lease, range } => self.launch(lease as usize, range),
                Command::Resize { lease, range } => {
                    let proc = lease as usize;
                    let Some(idx) = self.residents.iter().position(|r| r.proc == proc) else {
                        continue;
                    };
                    if !self.resize(idx, range) {
                        // The slice drained during the retreat: tell the
                        // core the launch finished (and, for a multi-launch
                        // process, that the next one is ready).
                        compensation.push(ArbEvent::KernelFinished { lease, ok: true });
                        if self.procs[proc].phase == Phase::Ready {
                            compensation.push(self.ready_event(proc));
                        }
                    }
                }
                // Informational in the sim: no watchdog deadlines are
                // armed, sessions are processes, promotion and preemption
                // are internal (the paired Resize/Dispatch do the work).
                Command::PromoteStarved { .. }
                | Command::Preempt { .. }
                | Command::Evict { .. }
                | Command::Reap { .. }
                | Command::RejectOverloaded { .. } => {}
            }
        }
    }

    /// Starts the next launch of `proc` on `range`. Charges the per-launch
    /// client-daemon communication as extra launch lead.
    fn launch(&mut self, proc: usize, range: SmRange) {
        let mode = self.exec_mode_for(proc);
        let p = &self.procs[proc];
        debug_assert_eq!(p.phase, Phase::Ready);
        let est = model::estimate_duration(
            &self.cfg,
            &p.app.perf,
            p.app.blocks_per_launch,
            range.len(),
            mode,
        );
        let comm = self.opts.comm_fraction * est;
        let id = self
            .backend
            .launch_slice(SliceSpec {
                perf: p.app.perf.clone(),
                sm_range: range,
                blocks: p.app.blocks_per_launch,
                mode,
                extra_lead_s: comm,
                batch: p.app.batch,
                tag: proc as u64,
            })
            .expect("slate launch must be valid");
        let now = self.backend.engine().now();
        let p = &mut self.procs[proc];
        p.comm_s += comm;
        p.phase = Phase::Running;
        p.kernel_start_s = p.kernel_start_s.min(now);
        self.trace.record(
            now,
            TraceKind::Launch {
                tag: proc as u64,
                range,
                blocks: p.app.blocks_per_launch,
            },
        );
        self.residents.push(Resident {
            proc,
            slice: id,
            range,
        });
    }

    /// Resizes a resident kernel to `new_range`: tears its slice down
    /// mid-flight and relaunches the remaining blocks — the dispatch-kernel
    /// retreat/relaunch of §IV-C. Returns false if the slice turned out to
    /// be complete (nothing to relaunch).
    fn resize(&mut self, idx: usize, new_range: SmRange) -> bool {
        let r = self.residents[idx];
        if r.range == new_range {
            return true;
        }
        // The retreat/relaunch itself is the backend's shared slice
        // operation; batching and mode come from this process's launch
        // configuration.
        let plan = {
            let p = &self.procs[r.proc];
            RelaunchPlan {
                perf: p.app.perf.clone(),
                mode: if self.opts.use_hardware_exec {
                    ExecMode::Hardware
                } else {
                    ExecMode::SlateWorkers {
                        task_size: self.opts.force_task_size.unwrap_or(p.task_size),
                    }
                },
                blocks_per_batch: (p.app.blocks_per_launch / p.app.batch as u64).max(1),
            }
        };
        let outcome = self.backend.resize_slice(r.slice, new_range, &plan);
        let now = self.backend.engine().now();
        let rep = match &outcome {
            ResizeOutcome::Completed(rep) | ResizeOutcome::Relaunched(rep, _) => rep,
        };
        self.trace.record(
            now,
            TraceKind::Stop {
                tag: r.proc as u64,
                done: rep.blocks_done,
            },
        );
        self.trace.record(
            now,
            TraceKind::Resize {
                tag: r.proc as u64,
                from: r.range,
                to: new_range,
            },
        );
        let p = &mut self.procs[r.proc];
        p.kernel_busy_s += rep.active_s;
        p.metrics.merge(rep);
        match outcome {
            ResizeOutcome::Completed(_) => {
                // Raced with completion: fold into the normal completion path.
                self.residents.remove(idx);
                self.finish_launch(r.proc);
                false
            }
            ResizeOutcome::Relaunched(rep, id) => {
                let remaining = rep.blocks_total.saturating_sub(rep.blocks_done);
                self.trace.record(
                    now,
                    TraceKind::Launch {
                        tag: r.proc as u64,
                        range: new_range,
                        blocks: remaining,
                    },
                );
                self.residents[idx].slice = id;
                self.residents[idx].range = new_range;
                true
            }
        }
    }

    /// Bookkeeping when a launch of `proc` completes (drain or resize race).
    fn finish_launch(&mut self, proc: usize) {
        let now = self.backend.engine().now();
        let p = &mut self.procs[proc];
        p.launches_done += 1;
        if p.launches_done < p.app.launches {
            p.phase = Phase::Ready;
        } else {
            p.phase = Phase::D2h;
            let bytes = p.app.d2h_bytes;
            p.transfer = Some(
                self.backend
                    .engine_mut()
                    .add_transfer(bytes, Dir::D2H, proc as u64),
            );
            self.trace.record(
                now,
                TraceKind::TransferStart {
                    tag: proc as u64,
                    h2d: false,
                    bytes,
                },
            );
        }
    }

    fn on_drain(&mut self, sid: SliceId) {
        let idx = self
            .residents
            .iter()
            .position(|r| r.slice == sid)
            .expect("drained slice is resident");
        let r = self.residents[idx];
        let rep = self.backend.drain_slice(sid);
        let now = self.backend.engine().now();
        self.trace.record(
            now,
            TraceKind::Stop {
                tag: r.proc as u64,
                done: rep.blocks_done,
            },
        );
        {
            let p = &mut self.procs[r.proc];
            p.kernel_busy_s += rep.active_s;
            p.kernel_end_s = now;
            p.metrics.merge(&rep);
        }
        self.residents.remove(idx);
        self.finish_launch(r.proc);

        let mut events = vec![ArbEvent::KernelFinished {
            lease: r.proc as u64,
            ok: true,
        }];
        if self.procs[r.proc].phase == Phase::Ready {
            // The process has more launches: ready again in the same batch,
            // which lets the core resume it on its old partition in place.
            events.push(self.ready_event(r.proc));
        }
        self.feed(&events);
    }

    fn run(mut self) -> (RunOutcome, Option<EventLog>) {
        // Announce every process as a session up front (t = 0): processes
        // are trusted workloads, so the sim applies no admission limits.
        // Latency-critical processes declare their class immediately
        // before opening; best-effort ones (the default) emit no extra
        // event, keeping pre-SLO transcripts byte-identical.
        let opened: Vec<ArbEvent> = self
            .procs
            .iter()
            .enumerate()
            .flat_map(|(i, p)| {
                let declare = (p.app.slo != SloClass::BestEffort).then_some(ArbEvent::SloArrival {
                    session: i as u64,
                    class: p.app.slo,
                });
                declare
                    .into_iter()
                    .chain(std::iter::once(ArbEvent::SessionOpened {
                        session: i as u64,
                    }))
            })
            .collect();
        self.feed(&opened);
        while let Some((now, ev)) = self.backend.engine_mut().step() {
            match ev {
                Event::Timer(tid) => {
                    let i = self
                        .procs
                        .iter()
                        .position(|p| p.timer == Some(tid))
                        .expect("unknown timer");
                    self.procs[i].timer = None;
                    self.procs[i].phase = Phase::H2d;
                    self.trace.record(
                        now,
                        TraceKind::TransferStart {
                            tag: i as u64,
                            h2d: true,
                            bytes: self.procs[i].app.h2d_bytes,
                        },
                    );
                    let bytes = self.procs[i].app.h2d_bytes;
                    self.procs[i].transfer = Some(self.backend.engine_mut().add_transfer(
                        bytes,
                        Dir::H2D,
                        i as u64,
                    ));
                }
                Event::TransferDone(tid) => {
                    let i = self
                        .procs
                        .iter()
                        .position(|p| p.transfer == Some(tid))
                        .expect("unknown transfer");
                    self.procs[i].transfer = None;
                    self.trace
                        .record(now, TraceKind::TransferEnd { tag: i as u64 });
                    match self.procs[i].phase {
                        Phase::H2d => {
                            self.procs[i].phase = Phase::Ready;
                            let ev = self.ready_event(i);
                            self.feed(&[ev]);
                        }
                        Phase::D2h => {
                            self.procs[i].phase = Phase::Done;
                            self.procs[i].end_s = now;
                            self.feed(&[ArbEvent::SessionClosed { session: i as u64 }]);
                        }
                        other => panic!("transfer completion in phase {other:?}"),
                    }
                }
                Event::SliceDrained(sid) => self.on_drain(sid),
                Event::SliceStarted(_) => {}
            }
        }
        debug_assert!(self.procs.iter().all(|p| p.phase == Phase::Done));
        debug_assert_eq!(self.arb.residents(), 0);
        debug_assert_eq!(self.arb.waiting(), 0);
        let log = self.arb.take_log();
        let makespan = self.procs.iter().map(|p| p.end_s).fold(0.0, f64::max);
        let outcome = RunOutcome {
            runtime: "Slate".into(),
            trace: self.trace,
            apps: self
                .procs
                .into_iter()
                .map(|p| AppResult {
                    bench: p.app.bench,
                    end_s: p.end_s,
                    app_time_s: p.end_s,
                    kernel_busy_s: p.kernel_busy_s,
                    kernel_start_s: if p.kernel_start_s.is_finite() {
                        p.kernel_start_s
                    } else {
                        0.0
                    },
                    kernel_end_s: p.kernel_end_s,
                    comm_s: p.comm_s,
                    inject_s: p.inject_s,
                    metrics: p.metrics,
                })
                .collect(),
            makespan_s: makespan,
        };
        (outcome, log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::replay;
    use slate_baselines::cuda::CudaRuntime;
    use slate_baselines::mps::MpsRuntime;
    use slate_kernels::workload::Benchmark;

    fn titan() -> DeviceConfig {
        DeviceConfig::titan_xp()
    }

    #[test]
    fn solo_gs_beats_cuda_substantially() {
        // The paper's flagship solo result: Slate's in-order scheduling
        // speeds Gaussian up ~28% (Table III).
        // Table III compares *kernel* execution time (application time at
        // small scale is dominated by fixed setup/injection costs).
        let slate = SlateRuntime::new(titan());
        let cuda = CudaRuntime::new(titan());
        let app = Benchmark::GS.app().scaled_down(10);
        let ts = slate.run(std::slice::from_ref(&app)).apps[0].kernel_busy_s;
        let tc = cuda.run(std::slice::from_ref(&app)).apps[0].kernel_busy_s;
        let gain = tc / ts - 1.0;
        assert!(
            (0.15..0.45).contains(&gain),
            "GS solo kernel gain should be ~28%, got {:.1}%",
            gain * 100.0
        );
    }

    #[test]
    fn solo_bs_within_a_few_percent_of_cuda() {
        let slate = SlateRuntime::new(titan());
        let cuda = CudaRuntime::new(titan());
        let app = Benchmark::BS.app().scaled_down(20);
        let ts = slate.run(std::slice::from_ref(&app)).apps[0].kernel_busy_s;
        let tc = cuda.run(std::slice::from_ref(&app)).apps[0].kernel_busy_s;
        let delta = (ts / tc - 1.0).abs();
        assert!(delta < 0.10, "BS solo kernel delta {:.1}%", delta * 100.0);
    }

    #[test]
    fn bs_rg_corun_beats_mps() {
        // Table IV: Slate gains ~30% on the BS-RG pairing.
        let slate = SlateRuntime::new(titan());
        let mps = MpsRuntime::new(titan());
        let a = Benchmark::BS.app().scaled_down(10);
        let b = Benchmark::RG.app().scaled_down(10);
        let s = slate.run(&[a.clone(), b.clone()]);
        let m = mps.run(&[a, b]);
        let gain = s.throughput_gain_over(&m);
        assert!(
            gain > 0.10,
            "Slate must clearly beat MPS on BS-RG, got {:.1}%",
            gain * 100.0
        );
    }

    #[test]
    fn mm_bs_pair_runs_solo_and_slate_is_close_to_mps() {
        // M_M x M_M -> solo; Slate may lose slightly (paper: -2%).
        let slate = SlateRuntime::new(titan());
        let mps = MpsRuntime::new(titan());
        let a = Benchmark::MM.app().scaled_down(10);
        let b = Benchmark::BS.app().scaled_down(10);
        let s = slate.run(&[a.clone(), b.clone()]);
        let m = mps.run(&[a, b]);
        let gain = s.throughput_gain_over(&m);
        assert!(
            (-0.10..0.10).contains(&gain),
            "MM-BS should be near parity, got {:.1}%",
            gain * 100.0
        );
    }

    #[test]
    fn corun_disabled_ablation_still_completes() {
        let opts = SlateOptions {
            enable_corun: false,
            ..Default::default()
        };
        let slate = SlateRuntime::with_options(titan(), opts);
        let a = Benchmark::BS.app().scaled_down(30);
        let b = Benchmark::RG.app().scaled_down(30);
        let out = slate.run(&[a, b]);
        assert_eq!(out.apps.len(), 2);
        assert!(out.apps.iter().all(|r| r.end_s > 0.0));
    }

    #[test]
    fn comm_and_inject_costs_are_reported() {
        let slate = SlateRuntime::new(titan());
        let app = Benchmark::TR.app().scaled_down(30);
        let out = slate.run(std::slice::from_ref(&app));
        let r = &out.apps[0];
        assert!(r.comm_s > 0.0);
        // One source, scaled by the app's fixed-cost scale (1/30 here).
        assert!((r.inject_s - 0.25 / 30.0).abs() < 1e-12, "{}", r.inject_s);
        // Comm is a few percent of kernel time.
        let frac = r.comm_s / r.kernel_busy_s;
        assert!((0.005..0.1).contains(&frac), "comm fraction {frac}");
    }

    #[test]
    fn autotune_recovers_the_mm_bs_loss() {
        // The paper's one losing pair exists because BS runs at the default
        // task size 10; the autotuner picks 1 for BS (Fig. 5) and recovers
        // the loss.
        let default_rt = SlateRuntime::new(titan());
        let tuned_rt = SlateRuntime::with_options(
            titan(),
            SlateOptions {
                autotune_task_size: true,
                ..SlateOptions::default()
            },
        );
        let apps = [
            Benchmark::MM.app().scaled_down(20),
            Benchmark::BS.app().scaled_down(20),
        ];
        let default_out = default_rt.run(&apps);
        let tuned_out = tuned_rt.run(&apps);
        assert!(
            tuned_out.makespan_s < default_out.makespan_s * 0.995,
            "autotuning must speed up MM-BS: {} vs {}",
            tuned_out.makespan_s,
            default_out.makespan_s
        );
    }

    #[test]
    fn pinned_solo_kernel_never_coruns() {
        // RG normally coruns with BS; pinning BS solo forbids it, so the
        // pair falls back to consecutive execution and gets slower.
        let slate = SlateRuntime::new(titan());
        let a = Benchmark::BS.app().scaled_down(20);
        let b = Benchmark::RG.app().scaled_down(20);
        let corun = slate.run(&[a.clone(), b.clone()]);
        let mut pinned = a;
        pinned.pinned_solo = true;
        let solo = slate.run(&[pinned, b]);
        assert!(
            solo.makespan_s > corun.makespan_s * 1.15,
            "pinning must forfeit the corun gain: {} vs {}",
            corun.makespan_s,
            solo.makespan_s
        );
        assert_eq!(
            solo.trace.resizes(0) + solo.trace.resizes(1),
            0,
            "no resizes when solo-pinned"
        );
    }

    #[test]
    fn zero_starvation_bound_forfeits_all_coruns() {
        // With a zero aging bound every ready process is instantly starved:
        // the selector never pairs kernels, so the profitable BS-RG corun
        // is forfeited and the pair degenerates to solo alternation.
        let corun = SlateRuntime::new(titan());
        let aged = SlateRuntime::with_options(
            titan(),
            SlateOptions {
                starvation_bound_s: Some(0.0),
                ..SlateOptions::default()
            },
        );
        let apps = [
            Benchmark::BS.app().scaled_down(20),
            Benchmark::RG.app().scaled_down(20),
        ];
        let paired = corun.run(&apps);
        let solo = aged.run(&apps);
        assert_eq!(
            solo.trace.resizes(0) + solo.trace.resizes(1),
            0,
            "a starved waiter must never join a corun"
        );
        assert!(solo.apps.iter().all(|r| r.end_s > 0.0));
        assert!(
            solo.makespan_s > paired.makespan_s * 1.15,
            "aging past the bound must forfeit the corun gain: {} vs {}",
            paired.makespan_s,
            solo.makespan_s
        );
    }

    #[test]
    fn generous_starvation_bound_leaves_schedule_unchanged() {
        // A bound far beyond the run's duration never trips, so the aged
        // selector reduces to the deterministic wait-aware choice and the
        // schedule (hence the makespan) is identical to the default.
        let default_rt = SlateRuntime::new(titan());
        let aged = SlateRuntime::with_options(
            titan(),
            SlateOptions {
                starvation_bound_s: Some(1e9),
                ..SlateOptions::default()
            },
        );
        let apps = [
            Benchmark::BS.app().scaled_down(20),
            Benchmark::RG.app().scaled_down(20),
        ];
        let a = default_rt.run(&apps);
        let b = aged.run(&apps);
        assert_eq!(a.makespan_s, b.makespan_s);
    }

    #[test]
    fn three_processes_complete() {
        let slate = SlateRuntime::new(titan());
        let apps = [
            Benchmark::BS.app().scaled_down(50),
            Benchmark::RG.app().scaled_down(50),
            Benchmark::GS.app().scaled_down(25),
        ];
        let out = slate.run(&apps);
        assert_eq!(out.apps.len(), 3);
        for r in &out.apps {
            assert!(r.end_s > 0.0 && r.kernel_busy_s > 0.0, "{:?}", r.bench);
        }
    }

    #[test]
    fn placed_run_spreads_apps_across_devices_and_drains() {
        use crate::placement::multi::JobOutcome;
        use crate::placement::PlacementConfig;
        let slate = SlateRuntime::new(titan());
        let apps = [
            Benchmark::BS.app().scaled_down(50),
            Benchmark::RG.app().scaled_down(50),
            Benchmark::GS.app().scaled_down(50),
            Benchmark::TR.app().scaled_down(50),
        ];
        let devices = [titan(), titan()];
        let out = slate.run_placed(&devices, &apps, PlacementConfig::default());
        assert!(out.drained, "placed fleet must drain");
        let mut per_device = [0usize; 2];
        for o in &out.outcomes {
            match o {
                Some(JobOutcome::Completed { device }) => per_device[*device] += 1,
                other => panic!("every app must complete, got {other:?}"),
            }
        }
        assert_eq!(per_device, [2, 2], "round robin spreads 4 apps 2+2");
        assert_eq!(out.stats.sessions_routed, 4);
        // Determinism: the same placed run routes identically.
        let again = slate.run_placed(&devices, &apps, PlacementConfig::default());
        for (a, b) in out.outcomes.iter().zip(&again.outcomes) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn recorded_run_is_replayable_and_deterministic() {
        let slate = SlateRuntime::new(titan());
        let apps = [
            Benchmark::BS.app().scaled_down(20),
            Benchmark::RG.app().scaled_down(20),
        ];
        let (out1, log1) = slate.run_recorded(&apps);
        replay::verify(&log1).expect("sim event log replays identically");
        assert!(
            log1.batches.iter().any(|b| b
                .commands
                .iter()
                .any(|c| matches!(c, Command::Resize { .. }))),
            "BS-RG must co-run, which requires at least one resize"
        );
        // The whole pipeline is deterministic: a second run produces the
        // byte-identical transcript.
        let (out2, log2) = slate.run_recorded(&apps);
        assert_eq!(out1.makespan_s, out2.makespan_s);
        assert_eq!(
            replay::transcript(&log1.batches),
            replay::transcript(&log2.batches)
        );
    }
}
