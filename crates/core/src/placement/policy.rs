//! Deterministic device-choice policies for session admission.
//!
//! A policy answers one question: *which device does a new session land
//! on?* It is consulted exactly once per session — on the first event
//! that names it (normally [`Event::SessionOpened`](crate::arbiter::Event))
//! — and the answer is sticky until the session ends. All policies are
//! pure functions of placement-layer state that mutates identically
//! across replays, so a recorded multi-device run routes the same way
//! when replayed (see [`super::replay`]).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How new sessions are routed to devices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum PlacementPolicy {
    /// Sessions cycle through devices in index order. Ignores load; the
    /// right default when sessions are statistically interchangeable.
    #[default]
    RoundRobin,
    /// Each session lands on the device with the lowest current load
    /// (ProfileTable-estimated pending milliseconds plus weighted
    /// resident/waiter pressure; see
    /// [`PlacementLayer::device_load`](super::PlacementLayer::device_load)).
    /// Ties break toward the device hosting fewer sessions, then the
    /// lowest index — so a burst of opens in one batch still spreads.
    LeastLoaded,
    /// Explicitly pinned sessions go to their pinned device (taken modulo
    /// the device count, so a pin outlives a smaller deployment); unpinned
    /// sessions fall back to round-robin.
    Affinity {
        /// session id → device index pins.
        pins: BTreeMap<u64, usize>,
    },
}

impl PlacementPolicy {
    /// Routes `session` to a device. `loads[i]` is the current load of
    /// device `i`, `sessions[i]` its current session count, `rr_next`
    /// the layer's round-robin cursor (set to `chosen + 1` by the caller
    /// only when the round-robin path was actually taken — the returned
    /// `bool`), and `eligible[i]` whether device `i` is in service as a
    /// routing target. The caller guarantees at least one device is
    /// eligible (it falls back to an all-`true` mask when the whole
    /// fleet is down). While every device is eligible, every policy
    /// routes exactly as it did before health gating existed.
    pub(super) fn route(
        &self,
        session: u64,
        loads: &[u64],
        sessions: &[usize],
        rr_next: usize,
        eligible: &[bool],
    ) -> (usize, bool) {
        let n = loads.len();
        debug_assert!(n > 0, "placement over zero devices");
        debug_assert!(eligible.iter().any(|&e| e), "no eligible device");
        match self {
            PlacementPolicy::RoundRobin => (rr_scan(rr_next, eligible), true),
            PlacementPolicy::LeastLoaded => {
                let mut best: Option<usize> = None;
                for i in 0..n {
                    if !eligible[i] {
                        continue;
                    }
                    let better = best
                        .is_none_or(|b| (loads[i], sessions[i], i) < (loads[b], sessions[b], b));
                    if better {
                        best = Some(i);
                    }
                }
                (best.unwrap_or(0), false)
            }
            PlacementPolicy::Affinity { pins } => match pins.get(&session) {
                // A pin to an out-of-service device falls back to
                // round-robin over the survivors rather than routing
                // into the failure domain.
                Some(&d) if eligible[d % n] => (d % n, false),
                _ => (rr_scan(rr_next, eligible), true),
            },
        }
    }
}

/// First eligible device scanning circularly from `rr_next`. Equals
/// `rr_next % n` when every device is eligible.
fn rr_scan(rr_next: usize, eligible: &[bool]) -> usize {
    let n = eligible.len();
    for k in 0..n {
        let d = (rr_next + k) % n;
        if eligible[d] {
            return d;
        }
    }
    rr_next % n
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL3: [bool; 3] = [true, true, true];
    const ALL2: [bool; 2] = [true, true];

    #[test]
    fn round_robin_cycles() {
        let p = PlacementPolicy::RoundRobin;
        let loads = [0, 0, 0];
        let sessions = [0, 0, 0];
        assert_eq!(p.route(1, &loads, &sessions, 0, &ALL3), (0, true));
        assert_eq!(p.route(2, &loads, &sessions, 1, &ALL3), (1, true));
        assert_eq!(p.route(3, &loads, &sessions, 2, &ALL3), (2, true));
        assert_eq!(p.route(4, &loads, &sessions, 3, &ALL3), (0, true));
    }

    #[test]
    fn least_loaded_prefers_low_load_then_fewer_sessions_then_index() {
        let p = PlacementPolicy::LeastLoaded;
        assert_eq!(p.route(1, &[50, 10, 30], &[0, 0, 0], 0, &ALL3), (1, false));
        // Equal load: fewer sessions wins.
        assert_eq!(p.route(1, &[10, 10], &[3, 1], 0, &ALL2), (1, false));
        // Fully equal: lowest index wins.
        assert_eq!(p.route(1, &[10, 10], &[2, 2], 0, &ALL2), (0, false));
    }

    #[test]
    fn affinity_pins_and_falls_back() {
        let pins = BTreeMap::from([(7u64, 1usize), (8, 5)]);
        let p = PlacementPolicy::Affinity { pins };
        let loads = [0, 0];
        let sessions = [0, 0];
        assert_eq!(p.route(7, &loads, &sessions, 0, &ALL2), (1, false));
        // Pin beyond the device count wraps.
        assert_eq!(p.route(8, &loads, &sessions, 0, &ALL2), (1, false));
        // Unpinned falls back to round-robin.
        assert_eq!(p.route(9, &loads, &sessions, 1, &ALL2), (1, true));
    }

    #[test]
    fn ineligible_devices_are_never_routing_targets() {
        let loads = [0, 0, 0];
        let sessions = [0, 0, 0];
        let only_mid = [false, true, false];
        // Round-robin skips past ineligible devices from the cursor.
        let p = PlacementPolicy::RoundRobin;
        assert_eq!(p.route(1, &loads, &sessions, 0, &only_mid), (1, true));
        assert_eq!(p.route(2, &loads, &sessions, 2, &only_mid), (1, true));
        // Least-loaded never argmins into an ineligible device, even at
        // zero load.
        let p = PlacementPolicy::LeastLoaded;
        assert_eq!(p.route(1, &[0, 50, 9], &sessions, 0, &only_mid), (1, false));
        // A pin to an ineligible device falls back to the survivors.
        let p = PlacementPolicy::Affinity {
            pins: BTreeMap::from([(7u64, 0usize)]),
        };
        assert_eq!(p.route(7, &loads, &sessions, 0, &only_mid), (1, true));
    }
}
