//! Deterministic fault injection for the simulated device stack.
//!
//! The Slate daemon funnels every client through one shared device context
//! (paper §IV-A), so a single misbehaving client — a kernel that never
//! terminates, a launch that faults, a process that dies mid-request — is a
//! hazard for every co-runner. Testing the daemon's recovery paths needs
//! those failures to happen *on demand and reproducibly*, which real
//! hardware does not offer.
//!
//! This module is that substrate: a [`FaultPlan`] is a list of rules, each
//! arming one [`FaultKind`] at one [`FaultSite`] on the nth matching
//! occurrence. Plans are either scripted rule-by-rule or generated from a
//! seed ([`FaultPlan::randomized`]) — the same seed always produces the
//! same plan, so a failing schedule can be replayed exactly.
//!
//! Hangs are modelled cooperatively through a [`FaultToken`]: the hung
//! execution blocks on the token until whoever owns the recovery path (the
//! daemon's watchdog) cancels it.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

/// Where in the request pipeline a fault can trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A kernel launch (after pointer resolution, before dispatch).
    Launch,
    /// A host↔device memory copy.
    Memcpy,
    /// Any request arriving on a session's command pipe.
    Request,
    /// An arbiter command about to be executed by a backend (used by the
    /// chaos-testing command-stream perturbations; see
    /// [`FaultPlan::command_chaos`]).
    Command,
    /// The device itself, as a failure domain: a whole accelerator is
    /// lost, degraded, or flapping. Fired by backends on dispatch (see
    /// [`FaultPlan::device_chaos`]).
    Device,
}

/// What failure to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The kernel's workers block forever; only cancelling the launch's
    /// [`FaultToken`] (watchdog eviction) releases them.
    KernelHang,
    /// The launch is rejected as a device-side fault.
    LaunchFault,
    /// The copy stalls for the given duration before completing.
    MemcpyStall {
        /// Stall length in milliseconds.
        millis: u64,
    },
    /// The daemon-side channel to the client is severed, as if the client
    /// process died mid-request.
    ChannelDrop,
    /// The whole device drops off the bus and stays down: every in-flight
    /// lease is lost and later dispatches fail immediately until an
    /// explicit restore.
    DeviceLoss,
    /// The device wedges for the given span of simulated time — work
    /// survives but makes no progress while the stall budget drains.
    DeviceStall {
        /// Stall length in milliseconds of simulated device time.
        millis: u64,
    },
    /// The device drops, then comes back on its own after `down_ms` of
    /// simulated time (a flapping link or a driver reset).
    DeviceFlap {
        /// How long the device stays down, in milliseconds.
        down_ms: u64,
    },
}

/// One armed fault: `kind` fires at the `nth` occurrence (1-based) of
/// `site`, optionally only for a specific kernel name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// Pipeline point the rule watches.
    pub site: FaultSite,
    /// Restrict to launches of this kernel (`None` matches any).
    pub kernel: Option<String>,
    /// Which matching occurrence triggers the fault (1 = the first).
    pub nth: u64,
    /// The failure injected when the rule fires.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults. Each rule fires at most once.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<ArmedRule>,
}

#[derive(Debug, Clone)]
struct ArmedRule {
    rule: FaultRule,
    seen: u64,
    fired: bool,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule (builder style).
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(ArmedRule {
            rule,
            seen: 0,
            fired: false,
        });
        self
    }

    /// Convenience: hang the `nth` launch of `kernel`.
    pub fn hang_kernel(self, kernel: &str, nth: u64) -> Self {
        self.with_rule(FaultRule {
            site: FaultSite::Launch,
            kernel: Some(kernel.to_string()),
            nth,
            kind: FaultKind::KernelHang,
        })
    }

    /// Convenience: fault the `nth` launch of `kernel`.
    pub fn fault_launch(self, kernel: &str, nth: u64) -> Self {
        self.with_rule(FaultRule {
            site: FaultSite::Launch,
            kernel: Some(kernel.to_string()),
            nth,
            kind: FaultKind::LaunchFault,
        })
    }

    /// Convenience: stall the `nth` memcpy for `millis` ms.
    pub fn stall_memcpy(self, nth: u64, millis: u64) -> Self {
        self.with_rule(FaultRule {
            site: FaultSite::Memcpy,
            kernel: None,
            nth,
            kind: FaultKind::MemcpyStall { millis },
        })
    }

    /// Convenience: sever the client channel at the `nth` request.
    pub fn drop_channel(self, nth: u64) -> Self {
        self.with_rule(FaultRule {
            site: FaultSite::Request,
            kernel: None,
            nth,
            kind: FaultKind::ChannelDrop,
        })
    }

    /// Convenience: hard-lose the device at its `nth` dispatch.
    pub fn kill_device(self, nth: u64) -> Self {
        self.with_rule(FaultRule {
            site: FaultSite::Device,
            kernel: None,
            nth,
            kind: FaultKind::DeviceLoss,
        })
    }

    /// Convenience: stall the device for `millis` ms at its `nth`
    /// dispatch.
    pub fn degrade_device(self, nth: u64, millis: u64) -> Self {
        self.with_rule(FaultRule {
            site: FaultSite::Device,
            kernel: None,
            nth,
            kind: FaultKind::DeviceStall { millis },
        })
    }

    /// Convenience: flap the device (down for `down_ms`, then back) at
    /// its `nth` dispatch.
    pub fn flap_device(self, nth: u64, down_ms: u64) -> Self {
        self.with_rule(FaultRule {
            site: FaultSite::Device,
            kernel: None,
            nth,
            kind: FaultKind::DeviceFlap { down_ms },
        })
    }

    /// Generates `faults` pseudo-random rules from `seed`. The same seed
    /// always yields the same plan — replay a failing run by reusing it.
    pub fn randomized(seed: u64, faults: u32) -> Self {
        let mut rng = SplitRng::new(seed);
        let mut plan = Self::new();
        for _ in 0..faults {
            let site = match rng.below(3) {
                0 => FaultSite::Launch,
                1 => FaultSite::Memcpy,
                _ => FaultSite::Request,
            };
            let kind = match site {
                FaultSite::Launch => {
                    if rng.below(2) == 0 {
                        FaultKind::KernelHang
                    } else {
                        FaultKind::LaunchFault
                    }
                }
                FaultSite::Memcpy => FaultKind::MemcpyStall {
                    millis: 1 + rng.below(20),
                },
                // `below(3)` above never yields the Command or Device
                // sites, which keeps this generator byte-stable for
                // existing seeds.
                FaultSite::Request | FaultSite::Command | FaultSite::Device => {
                    FaultKind::ChannelDrop
                }
            };
            plan = plan.with_rule(FaultRule {
                site,
                kernel: None,
                nth: 1 + rng.below(8),
                kind,
            });
        }
        plan
    }

    /// Generates `faults` pseudo-random [`FaultSite::Command`] rules from
    /// `seed` — the command-stream perturbation schedule consumed by the
    /// chaos backend decorator. Deterministic per seed, and drawn from a
    /// generator independent of [`FaultPlan::randomized`], so existing
    /// randomized seeds keep producing identical plans.
    pub fn command_chaos(seed: u64, faults: u32) -> Self {
        let mut rng = SplitRng::new(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
        let mut plan = Self::new();
        for _ in 0..faults {
            let kind = match rng.below(4) {
                0 => FaultKind::MemcpyStall {
                    millis: 1 + rng.below(5),
                },
                1 => FaultKind::LaunchFault,
                2 => FaultKind::KernelHang,
                _ => FaultKind::ChannelDrop,
            };
            plan = plan.with_rule(FaultRule {
                site: FaultSite::Command,
                kernel: None,
                nth: 1 + rng.below(6),
                kind,
            });
        }
        plan
    }

    /// Generates `faults` pseudo-random [`FaultSite::Device`] rules from
    /// `seed` — the device-failure schedule (losses, stalls, flaps)
    /// consumed by device-health-aware backends. Deterministic per seed,
    /// and drawn from a generator independent of both
    /// [`FaultPlan::randomized`] and [`FaultPlan::command_chaos`], so
    /// existing seeds for those keep producing identical plans.
    pub fn device_chaos(seed: u64, faults: u32) -> Self {
        let mut rng = SplitRng::new(seed.wrapping_mul(0x85eb_ca6b).wrapping_add(3));
        let mut plan = Self::new();
        for _ in 0..faults {
            let kind = match rng.below(3) {
                0 => FaultKind::DeviceLoss,
                1 => FaultKind::DeviceStall {
                    millis: 1 + rng.below(10),
                },
                _ => FaultKind::DeviceFlap {
                    down_ms: 1 + rng.below(10),
                },
            };
            plan = plan.with_rule(FaultRule {
                site: FaultSite::Device,
                kernel: None,
                nth: 1 + rng.below(6),
                kind,
            });
        }
        plan
    }

    /// Number of rules (fired or not).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Rules that have already fired.
    pub fn fired(&self) -> usize {
        self.rules.iter().filter(|r| r.fired).count()
    }

    /// Records one occurrence of `site` (for `Launch`, with the kernel
    /// name) and returns the fault to inject, if any rule just armed.
    ///
    /// Every matching rule's occurrence counter advances; the first rule
    /// reaching its `nth` occurrence fires (once) and its kind is returned.
    pub fn fire(&mut self, site: FaultSite, kernel: Option<&str>) -> Option<FaultKind> {
        let mut hit = None;
        for armed in &mut self.rules {
            if armed.rule.site != site {
                continue;
            }
            if let Some(want) = &armed.rule.kernel {
                if kernel != Some(want.as_str()) {
                    continue;
                }
            }
            armed.seen += 1;
            if !armed.fired && armed.seen == armed.rule.nth && hit.is_none() {
                armed.fired = true;
                hit = Some(armed.rule.kind);
            }
        }
        hit
    }

    /// The scripted rules, in insertion order.
    pub fn rules(&self) -> Vec<FaultRule> {
        self.rules.iter().map(|a| a.rule.clone()).collect()
    }
}

/// xorshift64* — small, seedable, good enough for schedule generation.
struct SplitRng {
    state: u64,
}

impl SplitRng {
    fn new(seed: u64) -> Self {
        Self {
            // Avoid the all-zero fixed point.
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Handle to a cooperatively hung execution. The hung side blocks in
/// [`FaultToken::block_until_cancelled`]; the recovery side (the daemon's
/// watchdog) calls [`FaultToken::cancel`] to release it.
#[derive(Debug, Clone, Default)]
pub struct FaultToken {
    inner: Arc<TokenState>,
}

#[derive(Debug, Default)]
struct TokenState {
    cancelled: Mutex<bool>,
    cv: Condvar,
}

impl FaultToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Releases every execution blocked on this token.
    pub fn cancel(&self) {
        *self.inner.cancelled.lock() = true;
        self.inner.cv.notify_all();
    }

    /// Whether [`FaultToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        *self.inner.cancelled.lock()
    }

    /// Blocks the calling thread until the token is cancelled.
    pub fn block_until_cancelled(&self) {
        let mut g = self.inner.cancelled.lock();
        while !*g {
            self.inner.cv.wait(&mut g);
        }
    }

    /// Blocks up to `timeout`; returns `true` if the token was cancelled.
    pub fn wait_cancelled_for(&self, timeout: Duration) -> bool {
        let mut g = self.inner.cancelled.lock();
        if *g {
            return true;
        }
        let _ = self.inner.cv.wait_for(&mut g, timeout);
        *g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let mut plan = FaultPlan::new();
        assert!(plan.is_empty());
        for _ in 0..100 {
            assert_eq!(plan.fire(FaultSite::Launch, Some("k")), None);
            assert_eq!(plan.fire(FaultSite::Request, None), None);
        }
        assert_eq!(plan.fired(), 0);
    }

    #[test]
    fn rule_fires_on_nth_matching_occurrence_only_once() {
        let mut plan = FaultPlan::new().hang_kernel("gemm", 3);
        // Non-matching kernels don't advance the counter.
        assert_eq!(plan.fire(FaultSite::Launch, Some("fft")), None);
        assert_eq!(plan.fire(FaultSite::Launch, Some("gemm")), None);
        assert_eq!(plan.fire(FaultSite::Launch, Some("gemm")), None);
        assert_eq!(
            plan.fire(FaultSite::Launch, Some("gemm")),
            Some(FaultKind::KernelHang)
        );
        // Fired rules stay quiet.
        assert_eq!(plan.fire(FaultSite::Launch, Some("gemm")), None);
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn wildcard_rule_matches_any_kernel() {
        let mut plan = FaultPlan::new().with_rule(FaultRule {
            site: FaultSite::Launch,
            kernel: None,
            nth: 2,
            kind: FaultKind::LaunchFault,
        });
        assert_eq!(plan.fire(FaultSite::Launch, Some("a")), None);
        assert_eq!(
            plan.fire(FaultSite::Launch, Some("b")),
            Some(FaultKind::LaunchFault)
        );
    }

    #[test]
    fn sites_count_independently() {
        let mut plan = FaultPlan::new().stall_memcpy(1, 5).drop_channel(2);
        // Launches don't advance either counter.
        assert_eq!(plan.fire(FaultSite::Launch, Some("k")), None);
        assert_eq!(
            plan.fire(FaultSite::Memcpy, None),
            Some(FaultKind::MemcpyStall { millis: 5 })
        );
        assert_eq!(plan.fire(FaultSite::Request, None), None);
        assert_eq!(
            plan.fire(FaultSite::Request, None),
            Some(FaultKind::ChannelDrop)
        );
    }

    #[test]
    fn randomized_plans_are_deterministic_per_seed() {
        let a = FaultPlan::randomized(42, 8);
        let b = FaultPlan::randomized(42, 8);
        assert_eq!(a.rules(), b.rules());
        assert_eq!(a.len(), 8);
        let c = FaultPlan::randomized(43, 8);
        assert_ne!(a.rules(), c.rules(), "different seeds, different plans");
    }

    #[test]
    fn device_chaos_is_deterministic_and_device_scoped() {
        let a = FaultPlan::device_chaos(7, 6);
        let b = FaultPlan::device_chaos(7, 6);
        assert_eq!(a.rules(), b.rules());
        assert_eq!(a.len(), 6);
        assert!(a.rules().iter().all(|r| r.site == FaultSite::Device));
        assert!(a.rules().iter().all(|r| matches!(
            r.kind,
            FaultKind::DeviceLoss | FaultKind::DeviceStall { .. } | FaultKind::DeviceFlap { .. }
        )));
        let c = FaultPlan::device_chaos(8, 6);
        assert_ne!(a.rules(), c.rules(), "different seeds, different plans");
    }

    #[test]
    fn device_builders_fire_at_the_device_site() {
        let mut plan = FaultPlan::new()
            .kill_device(2)
            .degrade_device(1, 4)
            .flap_device(3, 7);
        assert_eq!(
            plan.fire(FaultSite::Device, None),
            Some(FaultKind::DeviceStall { millis: 4 })
        );
        assert_eq!(
            plan.fire(FaultSite::Device, None),
            Some(FaultKind::DeviceLoss)
        );
        assert_eq!(
            plan.fire(FaultSite::Device, None),
            Some(FaultKind::DeviceFlap { down_ms: 7 })
        );
        // Other sites never advance device counters.
        assert_eq!(plan.fire(FaultSite::Launch, Some("k")), None);
        assert_eq!(plan.fired(), 3);
    }

    #[test]
    fn token_cancel_releases_blocked_thread() {
        let token = FaultToken::new();
        assert!(!token.is_cancelled());
        let t2 = token.clone();
        let waiter = std::thread::spawn(move || t2.block_until_cancelled());
        std::thread::sleep(Duration::from_millis(5));
        token.cancel();
        waiter.join().unwrap();
        assert!(token.is_cancelled());
    }

    #[test]
    fn token_timed_wait_reports_cancellation() {
        let token = FaultToken::new();
        assert!(!token.wait_cancelled_for(Duration::from_millis(5)));
        token.cancel();
        assert!(token.wait_cancelled_for(Duration::from_millis(5)));
    }
}
