//! Ablation study: which of Slate's mechanisms buys what.
//!
//! The paper attributes its gains to two techniques (§V-E): workload-aware
//! concurrent execution (selection + partitioning + resizing) and the basic
//! software scheduling (in-order tasks from persistent workers). This
//! experiment disables each mechanism in turn and measures the damage on a
//! representative pairing set:
//!
//! * `full` — Slate as published;
//! * `no-corun` — selection disabled, every pair runs consecutively;
//! * `no-resize` — partitions are never grown after a co-runner departs;
//! * `task-size-1` — no task grouping (one atomic per block);
//! * `hw-exec` — hardware block scheduling instead of transformed workers
//!   (keeps selection/partitioning, drops locality and setup amortisation).

use crate::report::{pct, Report, Table};
use slate_baselines::{MpsRuntime, Runtime};
use slate_core::runtime::{SlateOptions, SlateRuntime};
use slate_gpu_sim::device::DeviceConfig;
use slate_kernels::workload::Benchmark;

/// The pairing set the ablation averages over: the two mechanisms' flagship
/// pairs plus the adversarial one.
pub const PAIRS: [(Benchmark, Benchmark); 5] = [
    (Benchmark::BS, Benchmark::RG), // corun + resize flagship
    (Benchmark::GS, Benchmark::RG), // corun + locality
    (Benchmark::GS, Benchmark::GS), // software scheduling alone
    (Benchmark::MM, Benchmark::BS), // the paper's losing pair
    (Benchmark::RG, Benchmark::TR), // corun with a streaming partner
];

/// One ablation configuration's results.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub config: &'static str,
    /// Per-pair gain over MPS (same order as [`PAIRS`]).
    pub gains: Vec<f64>,
    /// Mean gain over MPS across the pairing set.
    pub mean_gain: f64,
}

fn configs() -> Vec<(&'static str, SlateOptions)> {
    let base = SlateOptions::default();
    vec![
        ("full", base.clone()),
        (
            "no-corun",
            SlateOptions {
                enable_corun: false,
                ..base.clone()
            },
        ),
        (
            "no-resize",
            SlateOptions {
                enable_resize: false,
                ..base.clone()
            },
        ),
        (
            "task-size-1",
            SlateOptions {
                force_task_size: Some(1),
                ..base.clone()
            },
        ),
        (
            "hw-exec",
            SlateOptions {
                use_hardware_exec: true,
                ..base.clone()
            },
        ),
        (
            "autotune",
            SlateOptions {
                autotune_task_size: true,
                ..base
            },
        ),
    ]
}

/// Runs the ablation grid.
pub fn run(cfg: &DeviceConfig, scale: u32) -> (Vec<AblationRow>, Report) {
    let mps = MpsRuntime::new(cfg.clone());
    let mut report = Report::new(
        "ablation",
        "Mechanism ablation: Slate variants vs MPS",
        "Two techniques contribute most of the gain (§V-E): workload-aware \
         concurrent kernel execution (RG pairings) and the basic \
         software-based scheduling (GS pairings). Disabling either must \
         surrender the corresponding gains.",
    );

    // MPS reference ANTT per pair. The BS-RG pair uses a *monolithic* BS
    // launch (the whole loop as one kernel) so that dynamic resizing has a
    // structural effect: without it, BS is stranded on its partition for
    // the remainder of the launch once RG departs.
    let pair_apps: Vec<[slate_kernels::AppSpec; 2]> = PAIRS
        .iter()
        .enumerate()
        .map(|(i, (a, b))| {
            let mut app_a = a.app().scaled_down(scale);
            if i == 0 {
                app_a.blocks_per_launch *= app_a.launches as u64;
                app_a.batch *= app_a.launches;
                app_a.launches = 1;
            }
            [app_a, b.app().scaled_down(scale)]
        })
        .collect();
    let mps_antts: Vec<f64> = pair_apps
        .iter()
        .map(|apps| {
            let solos = [mps.solo_time(&apps[0]), mps.solo_time(&apps[1])];
            mps.run(apps).antt(&solos)
        })
        .collect();

    let mut t = Table::new(
        "Gain over MPS by configuration (ANTT, MPS solo baselines)",
        &[
            "Config", "BS-RG", "GS-RG", "GS-GS", "MM-BS", "RG-TR", "mean",
        ],
    );
    let mut rows = Vec::new();
    for (label, opts) in configs() {
        let rt = SlateRuntime::with_options(cfg.clone(), opts);
        let gains: Vec<f64> = pair_apps
            .iter()
            .zip(&mps_antts)
            .map(|(apps, &mps_antt)| {
                let solos = [mps.solo_time(&apps[0]), mps.solo_time(&apps[1])];
                let antt = rt.run(apps).antt(&solos);
                mps_antt / antt - 1.0
            })
            .collect();
        let mean = gains.iter().sum::<f64>() / gains.len() as f64;
        let mut cells = vec![label.to_string()];
        cells.extend(gains.iter().map(|&g| pct(g)));
        cells.push(pct(mean));
        t.row(&cells);
        rows.push(AblationRow {
            config: label,
            gains,
            mean_gain: mean,
        });
    }
    report.tables.push(t);

    let by = |label: &str| rows.iter().find(|r| r.config == label).unwrap();
    let full = by("full");
    report.check(
        "the full configuration beats every *ablated* configuration on mean \
         gain (autotune, an extension, may exceed it)",
        rows.iter()
            .filter(|r| r.config != "autotune")
            .all(|r| r.mean_gain <= full.mean_gain + 1e-9),
    );
    report.check(
        "disabling co-running surrenders most of the BS-RG gain and a large \
         part of the GS-RG gain",
        by("no-corun").gains[0] < full.gains[0] * 0.4
            && by("no-corun").gains[1] < full.gains[1] - 0.08,
    );
    report.check(
        "disabling resizing costs a chunk of the corun gain on the \
         monolithic BS-RG pair",
        by("no-resize").gains[0] < full.gains[0] - 0.03,
    );
    report.check(
        "task size 1 hurts the atomic-bound kernels (GS-GS collapses)",
        by("task-size-1").gains[2] < full.gains[2] - 0.10,
    );
    report.check(
        "hardware execution surrenders the software-scheduling gains (GS-GS)",
        by("hw-exec").gains[2] < full.gains[2] * 0.4,
    );
    report.check(
        "autotuned task sizes improve the MM-BS pair (BS prefers task size 1)",
        by("autotune").gains[3] > full.gains[3] + 0.005,
    );
    report.note(format!(
        "mean gains: full {}, no-corun {}, no-resize {}, task-size-1 {}, \
         hw-exec {}, autotune {}",
        pct(full.mean_gain),
        pct(by("no-corun").mean_gain),
        pct(by("no-resize").mean_gain),
        pct(by("task-size-1").mean_gain),
        pct(by("hw-exec").mean_gain),
        pct(by("autotune").mean_gain),
    ));
    (rows, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_attributes_the_gains() {
        let (rows, report) = run(&DeviceConfig::titan_xp(), 10);
        assert_eq!(rows.len(), 6);
        assert!(report.all_pass(), "{}", report.to_text());
    }

    #[test]
    fn pair_antt_table_is_complete() {
        let (rows, _) = run(&DeviceConfig::titan_xp(), 20);
        for r in rows {
            assert_eq!(r.gains.len(), PAIRS.len(), "{}", r.config);
            assert!(r.gains.iter().all(|g| g.is_finite()));
        }
    }
}
