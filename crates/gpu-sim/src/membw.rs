//! DRAM bandwidth allocation among concurrent demanders.
//!
//! The memory system is modelled as a single shared DRAM pipe of capacity
//! `dram_bw`, fed by per-SM ports of capacity `per_sm_mem_bw`. Each active
//! grid slice demands bandwidth equal to what it could consume if memory
//! were free (its compute-limited block rate times DRAM bytes per block),
//! clamped by its SM-port capacity. When the sum of demands exceeds the pipe
//! capacity, bandwidth is shared *proportionally* — a first-order model of
//! GDDR arbitration fairness that reproduces the contention behaviour the
//! paper relies on (two memory-bound co-runners each slow to roughly half
//! speed; a memory-bound plus a compute-bound kernel barely interfere).

/// One bandwidth demander (a grid slice or a DMA transfer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BwDemand {
    /// Unconstrained consumption rate in bytes/s (already clamped by the
    /// demander's own port limits).
    pub demand: f64,
}

/// Proportionally allocates `capacity` bytes/s among `demands`.
///
/// Returns one allocation per demand, in order. Allocations never exceed the
/// demand, sum to at most `capacity`, and equal the demand whenever the total
/// demand fits. A zero or negative demand receives zero.
pub fn allocate(capacity: f64, demands: &[BwDemand]) -> Vec<f64> {
    assert!(capacity >= 0.0, "capacity must be non-negative");
    let total: f64 = demands.iter().map(|d| d.demand.max(0.0)).sum();
    if total <= capacity || total <= 0.0 {
        return demands.iter().map(|d| d.demand.max(0.0)).collect();
    }
    let scale = capacity / total;
    demands.iter().map(|d| d.demand.max(0.0) * scale).collect()
}

/// Bandwidth a memory-streaming kernel achieves on `sms` SMs given the
/// per-SM port cap and the aggregate pipe — the closed form behind Fig. 1.
pub fn streaming_bw(dram_bw: f64, per_sm_bw: f64, sms: u32) -> f64 {
    (sms as f64 * per_sm_bw).min(dram_bw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(x: f64) -> BwDemand {
        BwDemand { demand: x }
    }

    #[test]
    fn under_subscription_grants_everything() {
        let a = allocate(100.0, &[d(30.0), d(40.0)]);
        assert_eq!(a, vec![30.0, 40.0]);
    }

    #[test]
    fn over_subscription_scales_proportionally() {
        let a = allocate(100.0, &[d(100.0), d(300.0)]);
        assert!((a[0] - 25.0).abs() < 1e-9);
        assert!((a[1] - 75.0).abs() < 1e-9);
        let sum: f64 = a.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_and_negative_demands() {
        let a = allocate(100.0, &[d(0.0), d(-5.0), d(50.0)]);
        assert_eq!(a, vec![0.0, 0.0, 50.0]);
    }

    #[test]
    fn empty_demand_list() {
        assert!(allocate(100.0, &[]).is_empty());
    }

    #[test]
    fn allocation_never_exceeds_demand() {
        let demands = [d(10.0), d(20.0), d(1000.0)];
        let a = allocate(500.0, &demands);
        for (alloc, dem) in a.iter().zip(demands.iter()) {
            assert!(*alloc <= dem.demand + 1e-9);
        }
    }

    #[test]
    fn streaming_bw_fig1_shape() {
        // Titan Xp calibration: linear up to ~9 SMs then flat.
        let bw1 = streaming_bw(480e9, 54e9, 1);
        let bw4 = streaming_bw(480e9, 54e9, 4);
        let bw9 = streaming_bw(480e9, 54e9, 9);
        let bw30 = streaming_bw(480e9, 54e9, 30);
        assert!((bw4 / bw1 - 4.0).abs() < 1e-9, "linear region");
        assert_eq!(bw9, 480e9, "saturated by 9 SMs");
        assert_eq!(bw30, bw9, "flat after the knee");
    }
}
