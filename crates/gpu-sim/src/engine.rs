//! Fluid-rate discrete-event engine.
//!
//! The engine advances simulated time between *structural events* (a grid
//! slice drains, a transfer completes, a timer fires, a launch lead-in
//! expires). Between events every active entity progresses at a constant
//! rate derived from the device model:
//!
//! * a **grid slice** — `blocks` user thread blocks of one kernel bound to an
//!   SM range under a given [`ExecMode`] — completes blocks at
//!   `min(compute-limited, atomic-queue-limited, memory-limited) /
//!   imbalance`;
//! * a **transfer** moves bytes over PCIe at an equal share of the link.
//!
//! Memory-limited rates come from the proportional DRAM allocator in
//! [`crate::membw`], with per-slice demands damped by the L2 interference
//! model in [`crate::cache`]. Whenever the set of active entities changes,
//! all rates are recomputed — the classic fluid DES formulation.
//!
//! Schedulers (vanilla CUDA, MPS, Slate) sit on top of this engine: they add
//! and remove slices, start transfers, set timers, and react to the events
//! the engine reports from [`Engine::step`]. Dynamic kernel resizing maps to
//! removing a slice (the report says how many blocks completed) and adding a
//! new slice for the remainder on a different SM range — exactly the
//! terminate-and-relaunch mechanism of the paper's dispatch kernel.

use crate::cache;
use crate::device::{DeviceConfig, SmRange};
use crate::membw::{self, BwDemand};
use crate::metrics::SliceReport;
use crate::occupancy;
use crate::perf::{ExecMode, KernelPerf};

/// Straggler coefficient: finishing tail of a task-queue drain costs about
/// `IMBALANCE_BETA * task_size * workers` extra block-times spread over the
/// drain, calibrated against the paper's Fig. 5 (BlackScholes loses ~5% at
/// task size 10 and nothing at task size 1).
const IMBALANCE_BETA: f64 = 0.3;

/// Tolerance when deciding a slice has drained, in blocks.
const DRAIN_EPS: f64 = 1e-6;

/// Handle to a grid slice registered with the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SliceId(u64);

/// Handle to a host-device transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransferId(u64);

/// Handle to a timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// Direction of a host-device transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Host to device (`cudaMemcpyHostToDevice`).
    H2D,
    /// Device to host (`cudaMemcpyDeviceToHost`).
    D2H,
}

/// Specification of a grid slice to execute.
#[derive(Debug, Clone)]
pub struct SliceSpec {
    /// Kernel performance profile.
    pub perf: KernelPerf,
    /// SM range the slice is bound to.
    pub sm_range: SmRange,
    /// Number of user thread blocks to execute.
    pub blocks: u64,
    /// Scheduling mode (hardware or Slate persistent workers).
    pub mode: ExecMode,
    /// Extra lead-in time before the first block starts (on top of the
    /// device launch latency), e.g. daemon processing. Seconds.
    pub extra_lead_s: f64,
    /// Number of back-to-back identical real launches this slice stands
    /// for (repetition loops are batched for event economy). Tail
    /// imbalance is incurred once per real launch, so it is computed on
    /// `blocks / batch`.
    pub batch: u32,
    /// Attribution tag for metrics (kernel instance / process id).
    pub tag: u64,
}

/// Events reported by [`Engine::step`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A slice finished its launch lead-in and began executing blocks.
    SliceStarted(SliceId),
    /// A slice completed all its blocks. The slice stays registered (idle)
    /// until [`Engine::remove_slice`] collects its report.
    SliceDrained(SliceId),
    /// A transfer moved all its bytes and was deregistered.
    TransferDone(TransferId),
    /// A timer fired and was deregistered.
    Timer(TimerId),
}

#[derive(Debug, Clone)]
struct Slice {
    spec: SliceSpec,
    lead_remaining: f64,
    blocks_done: f64,
    rate: f64,
    rate_compute: f64,
    workers: u64,
    imbalance: f64,
    // accumulated metrics
    active_s: f64,
    stall_s: f64,
    insts: f64,
    flops: f64,
    request_bytes: f64,
    dram_bytes: f64,
    queue_pulls: f64,
    drained: bool,
}

#[derive(Debug, Clone)]
struct Transfer {
    bytes: f64,
    done: f64,
    rate: f64,
    dir: Dir,
    tag: u64,
}

/// The fluid-rate discrete-event GPU engine. See module docs.
#[derive(Debug)]
pub struct Engine {
    cfg: DeviceConfig,
    now: f64,
    next_id: u64,
    slices: Vec<(SliceId, Slice)>,
    transfers: Vec<(TransferId, Transfer)>,
    timers: Vec<(TimerId, f64)>,
    dirty: bool,
}

impl Engine {
    /// Creates an engine for the given device at time zero.
    pub fn new(cfg: DeviceConfig) -> Self {
        Self {
            cfg,
            now: 0.0,
            next_id: 0,
            slices: Vec::new(),
            transfers: Vec::new(),
            timers: Vec::new(),
            dirty: false,
        }
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The device configuration.
    pub fn device(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Ids of all registered slices (running, leading-in, or drained).
    pub fn slice_ids(&self) -> Vec<SliceId> {
        self.slices.iter().map(|(id, _)| *id).collect()
    }

    /// Number of registered slices.
    pub fn num_slices(&self) -> usize {
        self.slices.len()
    }

    fn fresh(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Registers a grid slice. Validates the spec against the device;
    /// returns an error string if the kernel cannot launch (zero occupancy,
    /// SM range out of bounds, invalid profile).
    pub fn add_slice(&mut self, spec: SliceSpec) -> Result<SliceId, String> {
        spec.perf.validate()?;
        if spec.sm_range.hi >= self.cfg.num_sms {
            return Err(format!(
                "SM range {:?} exceeds device with {} SMs",
                spec.sm_range, self.cfg.num_sms
            ));
        }
        let per_sm = occupancy::blocks_per_sm(&self.cfg, &spec.perf);
        if per_sm == 0 {
            return Err(format!(
                "kernel {} cannot be launched (occupancy 0)",
                spec.perf.name
            ));
        }
        if !spec.extra_lead_s.is_finite() || spec.extra_lead_s < 0.0 {
            return Err("extra_lead_s must be finite and non-negative".into());
        }
        let sms = spec.sm_range.len() as u64;
        let workers =
            (per_sm as u64 * sms).min(spec.perf.max_concurrent_blocks.unwrap_or(u64::MAX));
        let task_size = match spec.mode {
            ExecMode::Hardware => 1,
            ExecMode::SlateWorkers { task_size } => {
                if task_size == 0 {
                    return Err("task_size must be at least 1".into());
                }
                task_size
            }
        };
        if spec.batch == 0 {
            return Err("batch must be at least 1".into());
        }
        let n = spec.blocks as f64 / spec.batch as f64;
        let imbalance = if spec.blocks == 0 {
            1.0
        } else {
            (1.0 + IMBALANCE_BETA * task_size as f64 * workers as f64 / n).min(4.0)
        };
        // Lead-in: launch latency, plus per-worker setup for Slate relaunches
        // (workers on one SM set up serially), plus caller-specified extras.
        let worker_setup = match spec.mode {
            ExecMode::Hardware => 0.0,
            ExecMode::SlateWorkers { .. } => {
                per_sm as f64 * self.cfg.block_setup_cycles / self.cfg.clock_hz
            }
        };
        let lead = self.cfg.launch_latency_s + worker_setup + spec.extra_lead_s;
        let id = SliceId(self.fresh());
        self.slices.push((
            id,
            Slice {
                spec,
                lead_remaining: lead,
                blocks_done: 0.0,
                rate: 0.0,
                rate_compute: 0.0,
                workers,
                imbalance,
                active_s: 0.0,
                stall_s: 0.0,
                insts: 0.0,
                flops: 0.0,
                request_bytes: 0.0,
                dram_bytes: 0.0,
                queue_pulls: 0.0,
                drained: false,
            },
        ));
        self.dirty = true;
        Ok(id)
    }

    /// Deregisters a slice and returns its accumulated report (whether or
    /// not it drained). Panics on an unknown id.
    pub fn remove_slice(&mut self, id: SliceId) -> SliceReport {
        let idx = self
            .slices
            .iter()
            .position(|(sid, _)| *sid == id)
            .unwrap_or_else(|| panic!("remove_slice: unknown {id:?}"));
        let (_, s) = self.slices.remove(idx);
        self.dirty = true;
        Self::report_of(&self.cfg, &s)
    }

    /// Report for a registered slice without removing it.
    pub fn slice_report(&self, id: SliceId) -> SliceReport {
        let (_, s) = self
            .slices
            .iter()
            .find(|(sid, _)| *sid == id)
            .unwrap_or_else(|| panic!("slice_report: unknown {id:?}"));
        Self::report_of(&self.cfg, s)
    }

    fn report_of(cfg: &DeviceConfig, s: &Slice) -> SliceReport {
        SliceReport {
            kernel: s.spec.perf.name.clone(),
            tag: s.spec.tag,
            sm_range: s.spec.sm_range,
            blocks_total: s.spec.blocks,
            blocks_done: s.blocks_done.round().min(s.spec.blocks as f64) as u64,
            drained: s.drained,
            active_s: s.active_s,
            stall_s: s.stall_s,
            insts: s.insts,
            flops: s.flops,
            request_bytes: s.request_bytes,
            dram_bytes: s.dram_bytes,
            queue_pulls: s.queue_pulls,
            cycles: s.active_s * cfg.clock_hz,
            sms: s.spec.sm_range.len(),
        }
    }

    /// Persistent-worker count of a slice (resident blocks on its SM range).
    pub fn slice_workers(&self, id: SliceId) -> u64 {
        let (_, s) = self
            .slices
            .iter()
            .find(|(sid, _)| *sid == id)
            .unwrap_or_else(|| panic!("slice_workers: unknown {id:?}"));
        s.workers
    }

    /// Direction and tag of an active transfer, or `None` once completed.
    pub fn transfer_info(&self, id: TransferId) -> Option<(Dir, u64)> {
        self.transfers
            .iter()
            .find(|(tid, _)| *tid == id)
            .map(|(_, t)| (t.dir, t.tag))
    }

    /// Blocks remaining (not yet completed) in a slice.
    pub fn blocks_remaining(&self, id: SliceId) -> u64 {
        let (_, s) = self
            .slices
            .iter()
            .find(|(sid, _)| *sid == id)
            .unwrap_or_else(|| panic!("blocks_remaining: unknown {id:?}"));
        (s.spec.blocks as f64 - s.blocks_done).max(0.0).round() as u64
    }

    /// Starts a host-device transfer of `bytes` bytes.
    pub fn add_transfer(&mut self, bytes: u64, dir: Dir, tag: u64) -> TransferId {
        let id = TransferId(self.fresh());
        self.transfers.push((
            id,
            Transfer {
                bytes: bytes as f64,
                done: 0.0,
                rate: 0.0,
                dir,
                tag,
            },
        ));
        self.dirty = true;
        id
    }

    /// Sets a timer that fires at absolute simulated time `at` (clamped to
    /// now if already past).
    pub fn set_timer(&mut self, at: f64) -> TimerId {
        let id = TimerId(self.fresh());
        self.timers.push((id, at.max(self.now)));
        id
    }

    /// Cancels a pending timer; returns whether it was still pending.
    pub fn cancel_timer(&mut self, id: TimerId) -> bool {
        let before = self.timers.len();
        self.timers.retain(|(tid, _)| *tid != id);
        self.timers.len() != before
    }

    /// True if nothing is registered (no slices, transfers, or timers).
    pub fn idle(&self) -> bool {
        self.slices.is_empty() && self.transfers.is_empty() && self.timers.is_empty()
    }

    /// Recomputes every entity's progress rate from the device model.
    fn recompute_rates(&mut self) {
        let cfg = self.cfg.clone();
        // L2 pressure from all executing slices (lead-in slices excluded:
        // their working set is not yet live).
        let pressure = cache::pressure(
            cfg.l2_bytes,
            self.slices
                .iter()
                .filter(|(_, s)| s.lead_remaining <= 0.0 && !s.drained)
                .map(|(_, s)| s.spec.perf.l2_footprint_bytes),
        );

        // Pass 1: compute-limited rates and bandwidth demands.
        let mut demands = Vec::with_capacity(self.slices.len());
        let mut eff_dram = Vec::with_capacity(self.slices.len());
        for (_, s) in &mut self.slices {
            if s.lead_remaining > 0.0 || s.drained {
                s.rate = 0.0;
                s.rate_compute = 0.0;
                demands.push(BwDemand { demand: 0.0 });
                eff_dram.push(0.0);
                continue;
            }
            let perf = &s.spec.perf;
            let sms = s.spec.sm_range.len() as f64;
            let per_sm = occupancy::blocks_per_sm(&cfg, perf) as f64;
            // Kernels with limited parallelism cannot exploit the full range.
            let useful_sms = match perf.max_concurrent_blocks {
                Some(cap) => (cap as f64 / per_sm).min(sms),
                None => sms,
            };
            let resident_threads = per_sm * perf.threads_per_block as f64;
            let util = (resident_threads / cfg.threads_for_peak_per_sm as f64).min(1.0);
            let (cycles, atomic_cap) = match s.spec.mode {
                ExecMode::Hardware => (
                    perf.compute_cycles_per_block + cfg.block_setup_cycles,
                    f64::INFINITY,
                ),
                ExecMode::SlateWorkers { task_size } => (
                    perf.compute_cycles_per_block + perf.inject_cycles_per_block,
                    task_size as f64 / cfg.atomic_serial_s,
                ),
            };
            let r_comp = (useful_sms * cfg.clock_hz * util / cycles).min(atomic_cap);
            s.rate_compute = r_comp / s.imbalance;
            let dram = cache::effective_dram_bytes(perf, s.spec.mode.order(), pressure);
            eff_dram.push(dram);
            let demand = (r_comp * dram).min(useful_sms * cfg.per_sm_mem_bw);
            demands.push(BwDemand { demand });
        }
        // Multiple contending streams destroy DRAM row locality: when the
        // pipe is oversubscribed by two or more demanders, its effective
        // capacity shrinks by the mix penalty.
        let demanders = demands.iter().filter(|d| d.demand > 0.0).count();
        let total_demand: f64 = demands.iter().map(|d| d.demand.max(0.0)).sum();
        let capacity = if demanders >= 2 && total_demand > cfg.dram_bw {
            cfg.dram_bw * (1.0 - cfg.dram_mix_penalty)
        } else {
            cfg.dram_bw
        };
        let allocs = membw::allocate(capacity, &demands);
        for (i, (_, s)) in self.slices.iter_mut().enumerate() {
            if s.lead_remaining > 0.0 || s.drained {
                continue;
            }
            let r_mem = if eff_dram[i] > 0.0 {
                allocs[i] / eff_dram[i]
            } else {
                f64::INFINITY
            };
            let r_comp_raw = s.rate_compute * s.imbalance;
            s.rate = r_comp_raw.min(r_mem) / s.imbalance;
        }

        // Transfers: equal split of the PCIe link.
        let n = self.transfers.len().max(1) as f64;
        for (_, t) in &mut self.transfers {
            t.rate = cfg.pcie_bw / n;
        }
        self.dirty = false;
    }

    /// Advances to the next structural event and returns it, or `None` if
    /// the engine is idle. Time only moves inside this call.
    pub fn step(&mut self) -> Option<(f64, Event)> {
        if self.idle() {
            return None;
        }
        if self.dirty {
            self.recompute_rates();
        }

        // Find the earliest of: lead-in expiry, slice drain, transfer done,
        // timer fire.
        let mut dt = f64::INFINITY;
        enum Next {
            Start(usize),
            Drain(usize),
            Xfer(usize),
            Timer(usize),
        }
        let mut next: Option<Next> = None;
        for (i, (_, s)) in self.slices.iter().enumerate() {
            if s.drained {
                continue;
            }
            if s.lead_remaining > 0.0 {
                if s.lead_remaining < dt {
                    dt = s.lead_remaining;
                    next = Some(Next::Start(i));
                }
            } else if s.rate > 0.0 {
                let remaining = (s.spec.blocks as f64 - s.blocks_done).max(0.0);
                let t = remaining / s.rate;
                if t < dt {
                    dt = t;
                    next = Some(Next::Drain(i));
                }
            } else if s.spec.blocks as f64 - s.blocks_done <= DRAIN_EPS {
                // Zero-block slice: drains immediately.
                dt = 0.0;
                next = Some(Next::Drain(i));
            }
        }
        for (i, (_, t)) in self.transfers.iter().enumerate() {
            if t.rate > 0.0 {
                let ttime = (t.bytes - t.done).max(0.0) / t.rate;
                if ttime < dt {
                    dt = ttime;
                    next = Some(Next::Xfer(i));
                }
            }
        }
        for (i, (_, at)) in self.timers.iter().enumerate() {
            let t = (*at - self.now).max(0.0);
            if t < dt {
                dt = t;
                next = Some(Next::Timer(i));
            }
        }

        let next = next?;
        let dt = if dt.is_finite() { dt } else { return None };

        // Advance all progress by dt.
        self.advance(dt);

        // Emit the event and mutate state.
        let ev = match next {
            Next::Start(i) => {
                let (id, s) = &mut self.slices[i];
                s.lead_remaining = 0.0;
                self.dirty = true;
                Event::SliceStarted(*id)
            }
            Next::Drain(i) => {
                let (id, s) = &mut self.slices[i];
                s.blocks_done = s.spec.blocks as f64;
                s.drained = true;
                s.rate = 0.0;
                self.dirty = true;
                Event::SliceDrained(*id)
            }
            Next::Xfer(i) => {
                let (id, _) = self.transfers.remove(i);
                self.dirty = true;
                Event::TransferDone(id)
            }
            Next::Timer(i) => {
                let (id, _) = self.timers.remove(i);
                Event::Timer(id)
            }
        };
        Some((self.now, ev))
    }

    /// Integrates all entity progress and metrics over `dt` seconds.
    fn advance(&mut self, dt: f64) {
        if dt <= 0.0 {
            return;
        }
        for (_, s) in &mut self.slices {
            if s.drained {
                continue;
            }
            if s.lead_remaining > 0.0 {
                s.lead_remaining = (s.lead_remaining - dt).max(0.0);
                continue;
            }
            if s.rate <= 0.0 {
                continue;
            }
            let blocks = s.rate * dt;
            s.blocks_done += blocks;
            s.active_s += dt;
            if s.rate < s.rate_compute {
                s.stall_s += dt * (1.0 - s.rate / s.rate_compute);
            }
            let perf = &s.spec.perf;
            let (inject_insts, pulls_per_block) = match s.spec.mode {
                ExecMode::Hardware => (0.0, 0.0),
                ExecMode::SlateWorkers { task_size } => {
                    (perf.inject_insts_per_block, 1.0 / task_size as f64)
                }
            };
            s.insts += blocks * (perf.insts_per_block + inject_insts);
            s.flops += blocks * perf.flops_per_block;
            s.request_bytes += blocks * perf.mem_request_bytes_per_block;
            s.dram_bytes += blocks * perf.dram_bytes(s.spec.mode.order());
            s.queue_pulls += blocks * pulls_per_block;
        }
        for (_, t) in &mut self.transfers {
            t.done += t.rate * dt;
        }
        self.now += dt;
    }

    /// Runs the engine until `pred` returns true for an emitted event or the
    /// engine goes idle; returns the matching event if any. Convenience for
    /// tests.
    pub fn run_until(&mut self, mut pred: impl FnMut(&Event) -> bool) -> Option<(f64, Event)> {
        while let Some((t, ev)) = self.step() {
            if pred(&ev) {
                return Some((t, ev));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(DeviceConfig::titan_xp())
    }

    fn spec(perf: KernelPerf, blocks: u64, mode: ExecMode) -> SliceSpec {
        SliceSpec {
            sm_range: SmRange::all(30),
            perf,
            blocks,
            mode,
            extra_lead_s: 0.0,
            batch: 1,
            tag: 0,
        }
    }

    /// Drain a single slice to completion and return (time, report).
    fn solo_run(perf: KernelPerf, blocks: u64, mode: ExecMode) -> (f64, SliceReport) {
        let mut e = engine();
        let id = e.add_slice(spec(perf, blocks, mode)).unwrap();
        let (t, ev) = e
            .run_until(|ev| matches!(ev, Event::SliceDrained(_)))
            .unwrap();
        assert_eq!(ev, Event::SliceDrained(id));
        (t, e.remove_slice(id))
    }

    #[test]
    fn compute_bound_kernel_time_matches_closed_form() {
        // Pure compute kernel: no memory traffic at all.
        let mut p = KernelPerf::synthetic("compute", 100_000.0, 0.0);
        p.dram_bytes_inorder = 0.0;
        p.dram_bytes_scattered = 0.0;
        p.mem_request_bytes_per_block = 0.0;
        let blocks = 300_000u64;
        let (t, rep) = solo_run(p.clone(), blocks, ExecMode::Hardware);
        let cfg = DeviceConfig::titan_xp();
        let cycles = p.compute_cycles_per_block + cfg.block_setup_cycles;
        let r = 30.0 * cfg.clock_hz / cycles; // full occupancy => util 1
        let imb = 1.0 + IMBALANCE_BETA * (8.0 * 30.0) / blocks as f64;
        let expect = blocks as f64 / (r / imb) + cfg.launch_latency_s;
        assert!((t - expect).abs() / expect < 1e-9, "t={t}, expect={expect}");
        assert!(rep.drained);
        assert_eq!(rep.blocks_done, blocks);
    }

    #[test]
    fn memory_bound_kernel_saturates_dram() {
        // Streaming kernel: negligible compute, lots of bytes.
        let p = KernelPerf::synthetic("stream", 100.0, 1_000_000.0);
        let blocks = 50_000u64;
        let (t, rep) = solo_run(p, blocks, ExecMode::Hardware);
        let bytes = blocks as f64 * 1e6;
        let bw = bytes / (t - DeviceConfig::titan_xp().launch_latency_s);
        // Should achieve (close to) the 480 GB/s DRAM cap.
        assert!(bw > 0.95 * 480e9, "achieved {bw:.3e} B/s");
        assert!(rep.stall_s > 0.0, "memory-bound kernel must record stalls");
    }

    #[test]
    fn per_sm_cap_limits_small_ranges() {
        // Same streaming kernel on 4 SMs draws at most 4 * 54 GB/s.
        let p = KernelPerf::synthetic("stream", 100.0, 1_000_000.0);
        let mut e = engine();
        let mut s = spec(p, 20_000, ExecMode::Hardware);
        s.sm_range = SmRange::new(0, 3);
        let id = e.add_slice(s).unwrap();
        let (t, _) = e
            .run_until(|ev| matches!(ev, Event::SliceDrained(_)))
            .unwrap();
        let rep = e.remove_slice(id);
        let bw = rep.dram_bytes / rep.active_s;
        assert!(bw <= 4.0 * 54e9 * 1.01, "bw {bw:.3e}");
        assert!(bw >= 4.0 * 54e9 * 0.9, "bw {bw:.3e}");
        assert!(t > 0.0);
    }

    #[test]
    fn two_memory_bound_slices_share_bandwidth() {
        let p = KernelPerf::synthetic("stream", 100.0, 1_000_000.0);
        let mut e = engine();
        let mut s1 = spec(p.clone(), 30_000, ExecMode::Hardware);
        s1.sm_range = SmRange::new(0, 14);
        let mut s2 = spec(p, 30_000, ExecMode::Hardware);
        s2.sm_range = SmRange::new(15, 29);
        s2.tag = 1;
        let a = e.add_slice(s1).unwrap();
        let b = e.add_slice(s2).unwrap();
        // Both drain at the same moment (equal demands, proportional split).
        let (t1, _ev1) = e
            .run_until(|ev| matches!(ev, Event::SliceDrained(_)))
            .unwrap();
        let (t2, _ev2) = e
            .run_until(|ev| matches!(ev, Event::SliceDrained(_)))
            .unwrap();
        assert!((t2 - t1) / t2 < 1e-6, "t1={t1} t2={t2}");
        let ra = e.remove_slice(a);
        let rb = e.remove_slice(b);
        // Two contending streams share the mix-penalized capacity.
        let expect = 480e9 * (1.0 - DeviceConfig::titan_xp().dram_mix_penalty);
        let total_bw = (ra.dram_bytes + rb.dram_bytes) / t2.max(ra.active_s);
        assert!(total_bw <= expect * 1.01, "total {total_bw:.3e}");
        assert!(total_bw >= expect * 0.9, "total {total_bw:.3e}");
    }

    #[test]
    fn compute_and_memory_kernels_barely_interfere() {
        // A compute-bound kernel sharing the device with a streaming kernel
        // should run at nearly its solo speed (complementarity!).
        let mut comp = KernelPerf::synthetic("compute", 200_000.0, 0.0);
        comp.dram_bytes_inorder = 0.0;
        comp.dram_bytes_scattered = 0.0;
        let stream = KernelPerf::synthetic("stream", 100.0, 1_000_000.0);

        let mut half_comp = spec(comp.clone(), 100_000, ExecMode::Hardware);
        half_comp.sm_range = SmRange::new(0, 14);
        let (t_solo, _) = {
            let mut e = engine();
            let id = e.add_slice(half_comp.clone()).unwrap();
            let (t, _) = e
                .run_until(|ev| matches!(ev, Event::SliceDrained(_)))
                .unwrap();
            (t, e.remove_slice(id))
        };

        let mut e = engine();
        let a = e.add_slice(half_comp).unwrap();
        let mut s2 = spec(stream, 1_000_000, ExecMode::Hardware);
        s2.sm_range = SmRange::new(15, 29);
        let _b = e.add_slice(s2).unwrap();
        let (t_corun, ev) = e
            .run_until(|ev| matches!(ev, Event::SliceDrained(_)))
            .unwrap();
        assert_eq!(ev, Event::SliceDrained(a), "compute kernel finishes first");
        assert!(
            (t_corun - t_solo).abs() / t_solo < 0.01,
            "solo {t_solo} vs corun {t_corun}"
        );
    }

    #[test]
    fn slate_mode_skips_block_setup_but_pays_injection() {
        // Compute-bound kernel with tiny blocks on a device with expensive
        // block dispatch: hardware pays the setup cost per block; Slate's
        // persistent workers pay only the injected cycles.
        let mut cfg = DeviceConfig::titan_xp();
        cfg.block_setup_cycles = 600.0;
        let mut p = KernelPerf::synthetic("tinyblocks", 800.0, 0.0);
        p.dram_bytes_inorder = 0.0;
        p.dram_bytes_scattered = 0.0;
        p.inject_cycles_per_block = 40.0;
        let blocks = 2_000_000u64;
        let run = |mode: ExecMode| {
            let mut e = Engine::new(cfg.clone());
            let id = e.add_slice(spec(p.clone(), blocks, mode)).unwrap();
            let (t, _) = e
                .run_until(|ev| matches!(ev, Event::SliceDrained(_)))
                .unwrap();
            (t, e.remove_slice(id))
        };
        let (t_hw, _) = run(ExecMode::Hardware);
        let (t_slate, rep) = run(ExecMode::SlateWorkers { task_size: 20 });
        assert!(
            t_slate < t_hw * 0.75,
            "slate {t_slate} should beat hardware {t_hw} on tiny blocks"
        );
        // Queue pulls recorded: one per task.
        assert!((rep.queue_pulls - blocks as f64 / 20.0).abs() < 1.0);
    }

    #[test]
    fn parallelism_cap_limits_useful_sms() {
        // A kernel that can only keep 4 SMs' worth of blocks in flight runs
        // no faster on 30 SMs than on 4 (the QuasiRandom situation).
        let mut p = KernelPerf::synthetic("rg", 10_000.0, 0.0);
        p.dram_bytes_inorder = 0.0;
        p.dram_bytes_scattered = 0.0;
        p.max_concurrent_blocks = Some(32); // 8 resident/SM -> 4 useful SMs
        let blocks = 200_000u64;
        let run_on = |sms: SmRange| {
            let mut e = engine();
            let mut s = spec(p.clone(), blocks, ExecMode::Hardware);
            s.sm_range = sms;
            let id = e.add_slice(s).unwrap();
            let (t, _) = e
                .run_until(|ev| matches!(ev, Event::SliceDrained(_)))
                .unwrap();
            let _ = e.remove_slice(id);
            t
        };
        let t30 = run_on(SmRange::all(30));
        let t4 = run_on(SmRange::new(0, 3));
        let t2 = run_on(SmRange::new(0, 1));
        assert!(
            (t30 - t4).abs() / t4 < 1e-9,
            "30 SMs no better than 4: {t30} vs {t4}"
        );
        assert!(t2 > t4 * 1.8, "2 SMs roughly halves the rate: {t2} vs {t4}");
    }

    #[test]
    fn atomic_cap_throttles_task_size_one() {
        let mut p = KernelPerf::synthetic("tinyblocks", 800.0, 0.0);
        p.dram_bytes_inorder = 0.0;
        p.dram_bytes_scattered = 0.0;
        let blocks = 2_000_000u64;
        let (t1, _) = solo_run(p.clone(), blocks, ExecMode::SlateWorkers { task_size: 1 });
        let (t10, _) = solo_run(p, blocks, ExecMode::SlateWorkers { task_size: 10 });
        assert!(
            t10 < t1,
            "task size 10 ({t10}) must beat task size 1 ({t1})"
        );
    }

    #[test]
    fn large_task_size_suffers_imbalance() {
        let mut p = KernelPerf::synthetic("k", 20_000.0, 0.0);
        p.dram_bytes_inorder = 0.0;
        p.dram_bytes_scattered = 0.0;
        let blocks = 20_000u64; // small grid: tail imbalance matters
        let (t10, _) = solo_run(p.clone(), blocks, ExecMode::SlateWorkers { task_size: 10 });
        let (t100, _) = solo_run(p, blocks, ExecMode::SlateWorkers { task_size: 100 });
        assert!(t100 > t10, "oversized tasks must hurt: {t100} <= {t10}");
    }

    #[test]
    fn resize_preserves_total_blocks() {
        let p = KernelPerf::synthetic("k", 10_000.0, 1000.0);
        let mut e = engine();
        let mut s = spec(p.clone(), 100_000, ExecMode::SlateWorkers { task_size: 10 });
        s.sm_range = SmRange::all(30);
        let id = e.add_slice(s).unwrap();
        // Let it run for a while, then shrink to 10 SMs.
        let timer = e.set_timer(0.002);
        let (_, ev) = e.step().unwrap(); // SliceStarted
        assert!(matches!(ev, Event::SliceStarted(_)));
        let (_, ev) = e.step().unwrap();
        assert_eq!(ev, Event::Timer(timer));
        let rep = e.remove_slice(id);
        assert!(!rep.drained);
        let remaining = rep.blocks_total - rep.blocks_done;
        assert!(remaining > 0 && remaining < 100_000);
        let mut s2 = spec(p, remaining, ExecMode::SlateWorkers { task_size: 10 });
        s2.sm_range = SmRange::new(0, 9);
        let id2 = e.add_slice(s2).unwrap();
        let (_, ev) = e
            .run_until(|ev| matches!(ev, Event::SliceDrained(_)))
            .unwrap();
        assert_eq!(ev, Event::SliceDrained(id2));
        let rep2 = e.remove_slice(id2);
        assert_eq!(rep.blocks_done + rep2.blocks_done, 100_000);
    }

    #[test]
    fn transfers_share_pcie_equally() {
        let mut e = engine();
        let a = e.add_transfer(12_000_000_000, Dir::H2D, 0); // 1 s alone
        let _b = e.add_transfer(12_000_000_000, Dir::D2H, 1);
        let (t, ev) = e.step().unwrap();
        assert!(matches!(ev, Event::TransferDone(_)));
        assert!((t - 2.0).abs() < 1e-9, "two transfers halve the link: {t}");
        let (t2, ev2) = e.step().unwrap();
        assert!(matches!(ev2, Event::TransferDone(_)));
        assert!((t2 - 2.0).abs() < 1e-9, "{t2}");
        let _ = a;
    }

    #[test]
    fn timers_fire_in_order() {
        let mut e = engine();
        let t2 = e.set_timer(2.0);
        let t1 = e.set_timer(1.0);
        assert_eq!(e.step().unwrap(), (1.0, Event::Timer(t1)));
        assert_eq!(e.step().unwrap(), (2.0, Event::Timer(t2)));
        assert!(e.step().is_none());
    }

    #[test]
    fn cancel_timer_removes_it() {
        let mut e = engine();
        let t1 = e.set_timer(1.0);
        assert!(e.cancel_timer(t1));
        assert!(!e.cancel_timer(t1));
        assert!(e.step().is_none());
    }

    #[test]
    fn add_slice_validates() {
        let mut e = engine();
        let p = KernelPerf::synthetic("k", 1000.0, 0.0);
        let mut s = spec(p.clone(), 10, ExecMode::Hardware);
        s.sm_range = SmRange::new(0, 99);
        assert!(e.add_slice(s).is_err(), "out-of-range SMs rejected");
        let mut s = spec(p.clone(), 10, ExecMode::SlateWorkers { task_size: 0 });
        s.sm_range = SmRange::all(30);
        assert!(e.add_slice(s).is_err(), "zero task size rejected");
        let mut bad = p;
        bad.smem_per_block = 10 * 1024 * 1024;
        assert!(
            e.add_slice(spec(bad, 10, ExecMode::Hardware)).is_err(),
            "unlaunchable kernel rejected"
        );
    }

    #[test]
    fn zero_block_slice_drains_immediately() {
        let mut e = engine();
        let p = KernelPerf::synthetic("k", 1000.0, 0.0);
        let id = e.add_slice(spec(p, 0, ExecMode::Hardware)).unwrap();
        let (_, ev) = e
            .run_until(|ev| matches!(ev, Event::SliceDrained(_)))
            .unwrap();
        assert_eq!(ev, Event::SliceDrained(id));
    }

    #[test]
    fn metrics_accumulate_consistently() {
        let p = KernelPerf::synthetic("k", 10_000.0, 2048.0);
        let blocks = 100_000u64;
        let (_, rep) = solo_run(p.clone(), blocks, ExecMode::Hardware);
        let b = blocks as f64;
        assert!((rep.flops - b * p.flops_per_block).abs() / (b * p.flops_per_block) < 1e-6);
        assert!((rep.insts - b * p.insts_per_block).abs() / (b * p.insts_per_block) < 1e-6);
        assert!(
            (rep.request_bytes - b * p.mem_request_bytes_per_block).abs()
                / (b * p.mem_request_bytes_per_block)
                < 1e-6
        );
        assert!(rep.ipc() > 0.0);
        assert!(rep.gflops() > 0.0);
    }

    #[test]
    fn locality_gap_speeds_up_inorder_execution() {
        // Kernel with a 2x in-order/scattered DRAM gap, balanced so that
        // in-order traffic fits under the DRAM cap but scattered traffic
        // does not (the Gaussian situation in the paper's Table III).
        let mut p = KernelPerf::synthetic("gauss", 40_000.0, 0.0);
        p.mem_request_bytes_per_block = 800_000.0;
        p.dram_bytes_inorder = 400_000.0;
        p.dram_bytes_scattered = 800_000.0;
        let blocks = 100_000u64;
        let (t_hw, hw) = solo_run(p.clone(), blocks, ExecMode::Hardware);
        let (t_slate, sl) = solo_run(p, blocks, ExecMode::SlateWorkers { task_size: 10 });
        assert!(
            t_slate < t_hw * 0.7,
            "in-order locality should win big: {t_slate} vs {t_hw}"
        );
        // Achieved request bandwidth should be higher under Slate.
        assert!(sl.request_bw() > hw.request_bw());
        // The scattered run stalls on memory; the in-order run does not.
        assert!(hw.stall_fraction() > 0.1);
        assert!(sl.stall_fraction() < hw.stall_fraction());
    }
}
