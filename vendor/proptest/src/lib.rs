//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses, with a
//! deterministic per-test RNG (seeded from the test name) so failures are
//! reproducible without a persistence file:
//!
//! * `proptest! { #![proptest_config(..)] #[test] fn f(x in strat) {..} }`
//! * strategies: integer/float ranges, tuples (2..=6), `prop::collection::vec`,
//!   regex-lite string patterns (`".{0,400}"`, `"[a-z_][a-z0-9_]{0,15}"`),
//!   `any::<bool>()` and `any` over the unsigned integers, `Just`,
//!   `prop_oneof!`, and `.prop_map`
//! * `prop_assert!` / `prop_assert_eq!`, bodies may `return Ok(())`

pub mod test_runner {
    use std::fmt;

    /// Deterministic xorshift64* generator.
    pub struct TestRng(u64);

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            Self(seed | 1)
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `[0, span)`; `span` must be nonzero.
        pub fn below(&mut self, span: u64) -> u64 {
            self.next_u64() % span
        }

        /// Uniform value in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            Self(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    pub struct TestRunner {
        cases: u32,
        rng: TestRng,
    }

    impl TestRunner {
        pub fn new(config: crate::ProptestConfig, name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self {
                cases: config.cases,
                rng: TestRng::new(h),
            }
        }

        pub fn cases(&self) -> u32 {
            self.cases
        }

        pub fn sample<S: crate::Strategy>(&mut self, strategy: &S) -> S::Value {
            strategy.sample(&mut self.rng)
        }
    }
}

use test_runner::TestRng;

#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of values of one type. Unlike real proptest there is no
/// shrinking; failures report the deterministic seed context instead.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )+};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_float_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit() as $t * (self.end - self.start)
            }
        }
    )+};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

macro_rules! impl_any_uint {
    ($($t:ty),+) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                // Bias toward small values half the time: uniform u64s are
                // astronomically large almost always, which starves the
                // "interesting" low end (0, 1, collisions between samples).
                if rng.below(2) == 0 {
                    rng.below(16) as $t
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )+};
}

impl_any_uint!(u8, u16, u32, u64, usize);

/// Strategy that always yields a clone of one value (real proptest's
/// `Just`).
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// One arm of a [`Union`]: a boxed sampling function.
pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice between heterogeneous strategies with one value type —
/// the engine behind [`prop_oneof!`]. Unlike real proptest, all arms are
/// equally weighted.
pub struct Union<T> {
    options: Vec<UnionArm<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<UnionArm<T>>) -> Self {
        assert!(!options.is_empty(), "empty prop_oneof!");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len() as u64) as usize;
        (self.options[pick])(rng)
    }
}

/// Picks one of the listed strategies per sample, uniformly (the real
/// macro's `weight => strategy` arms are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut __options: ::std::vec::Vec<
            ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>,
        > = ::std::vec::Vec::new();
        $({
            let __s = $strat;
            __options.push(::std::boxed::Box::new(
                move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::Strategy::sample(&__s, rng)
                },
            ));
        })+
        $crate::Union::new(__options)
    }};
}

// ---------------------------------------------------------------------------
// Regex-lite string strategies: `&str` patterns sample random strings.
// ---------------------------------------------------------------------------

enum Atom {
    /// `.` — any printable character (plus occasional whitespace/multibyte).
    Dot,
    /// `[a-z0-9_]` — explicit ranges and singletons.
    Class(Vec<(char, char)>),
    /// A literal character.
    Lit(char),
}

struct PatternAtom {
    atom: Atom,
    min: u32,
    max: u32,
}

/// Parses the regex subset used as string strategies: atoms `.`,
/// `[ranges/chars]` and literals, each optionally followed by `{m}` or
/// `{m,n}`. Anything else is rejected loudly.
fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Dot
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = chars[i];
                    assert!(
                        c != '^' && c != '\\',
                        "proptest stub: unsupported char-class token in {pattern:?}"
                    );
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        set.push((c, chars[i + 2]));
                        i += 3;
                    } else {
                        set.push((c, c));
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "proptest stub: unterminated class in {pattern:?}"
                );
                i += 1; // ']'
                Atom::Class(set)
            }
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '\\' => {
                panic!("proptest stub: unsupported pattern construct in {pattern:?}")
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            i += 1;
            let start = i;
            while i < chars.len() && chars[i] != '}' {
                i += 1;
            }
            assert!(
                i < chars.len(),
                "proptest stub: unterminated quantifier in {pattern:?}"
            );
            let spec: String = chars[start..i].iter().collect();
            i += 1; // '}'
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("quantifier min"),
                    n.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let m: u32 = spec.trim().parse().expect("quantifier count");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(PatternAtom { atom, min, max });
    }
    atoms
}

/// Palette for `.`: mostly printable ASCII with occasional whitespace and
/// multibyte characters, to stress text pipelines the way real proptest's
/// arbitrary strings do.
fn sample_dot(rng: &mut TestRng) -> char {
    match rng.below(20) {
        0 => '\n',
        1 => '\t',
        2 => '"',
        3 => '\u{e9}',   // é
        4 => '\u{2192}', // →
        _ => (0x20 + rng.below(0x5f) as u32) as u8 as char,
    }
}

fn sample_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
    match atom {
        Atom::Dot => out.push(sample_dot(rng)),
        Atom::Lit(c) => out.push(*c),
        Atom::Class(set) => {
            let total: u64 = set.iter().map(|(a, b)| (*b as u64) - (*a as u64) + 1).sum();
            let mut pick = rng.below(total);
            for (a, b) in set {
                let span = (*b as u64) - (*a as u64) + 1;
                if pick < span {
                    out.push(char::from_u32(*a as u32 + pick as u32).expect("class char"));
                    return;
                }
                pick -= span;
            }
            unreachable!("class pick in range");
        }
    }
}

impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for pa in &atoms {
            let n = pa.min + rng.below((pa.max - pa.min + 1) as u64) as u32;
            for _ in 0..n {
                sample_atom(&pa.atom, rng, &mut out);
            }
        }
        out
    }
}

pub mod prop {
    pub mod collection {
        use crate::test_runner::TestRng;
        use crate::Strategy;

        pub struct SizeRange {
            pub lo: usize,
            pub hi: usize,
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                Self {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                Self {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n }
            }
        }

        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo + 1) as u64;
                let n = self.size.lo + rng.below(span) as usize;
                (0..n).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}: {}", __a, __b, format!($($fmt)+)),
            ));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            for __case in 0..runner.cases() {
                $(let $arg = runner.sample(&$strat);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest case {}/{} of {} failed: {}",
                        __case + 1,
                        runner.cases(),
                        stringify!($name),
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_sampling_matches_shape() {
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..200 {
            let s = Strategy::sample("[a-z_][a-z0-9_]{0,15}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 16);
            let first = s.chars().next().unwrap();
            assert!(first == '_' || first.is_ascii_lowercase());
            for c in s.chars().skip(1) {
                assert!(c == '_' || c.is_ascii_lowercase() || c.is_ascii_digit());
            }
        }
    }

    #[test]
    fn dot_pattern_bounds_length() {
        let mut rng = crate::test_runner::TestRng::new(9);
        for _ in 0..100 {
            let s = Strategy::sample(".{0,40}", &mut rng);
            assert!(s.chars().count() <= 40);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let cfg = ProptestConfig::with_cases(4);
        let mut a = crate::test_runner::TestRunner::new(cfg, "t");
        let mut b = crate::test_runner::TestRunner::new(cfg, "t");
        for _ in 0..4 {
            assert_eq!(a.sample(&(0u64..1000)), b.sample(&(0u64..1000)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro front-end compiles and enforces ranges.
        #[test]
        fn macro_smoke(x in 1u32..=8, y in 0.0..1.0f64,
                       v in prop::collection::vec(0u32..5, 0..6),
                       flag in any::<bool>(),
                       name in "[a-z]{1,4}") {
            prop_assert!((1..=8).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!(v.len() < 6, "len {}", v.len());
            if flag && name.is_empty() {
                return Ok(());
            }
            prop_assert_eq!(name.len(), name.chars().count());
        }
    }
}
