//! Record and replay of arbitration decisions.
//!
//! Because [`ArbiterCore`] is deterministic and
//! I/O-free, a recording of its inputs is a complete specification of its
//! outputs: replaying an [`EventLog`] through a fresh core must reproduce
//! the logged commands exactly, batch by batch. The golden replay test
//! checks a committed log's [`transcript`] byte-for-byte, which turns any
//! unintended policy drift into a test failure with a readable diff.

use super::events::{Event, Tick};
use super::state::ArbiterConfig;
use super::ArbiterCore;
use crate::arbiter::Command;
use serde::{Deserialize, Serialize};
use slate_gpu_sim::device::DeviceConfig;
use std::fmt::Write as _;

/// One recorded [`ArbiterCore::feed`] call: the batch timestamp, the
/// events fed, and the commands the core returned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoggedBatch {
    /// The core's (clamped) logical clock when the batch was absorbed.
    pub at: Tick,
    /// The events fed, in order.
    pub events: Vec<Event>,
    /// The commands returned, in order.
    pub commands: Vec<Command>,
}

/// A self-contained recording of an arbitration run: the device and
/// configuration plus every decision-relevant batch, in feed order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    /// The device that was arbitrated.
    pub device: DeviceConfig,
    /// The configuration the core ran under.
    pub config: ArbiterConfig,
    /// The recorded batches.
    pub batches: Vec<LoggedBatch>,
}

/// Replays `log` through a fresh core, returning each batch with the
/// commands the *replay* produced (the logged commands are ignored).
pub fn replay(log: &EventLog) -> Vec<LoggedBatch> {
    let mut core = ArbiterCore::new(log.device.clone(), log.config.clone());
    log.batches
        .iter()
        .map(|b| LoggedBatch {
            at: b.at,
            events: b.events.clone(),
            commands: core.feed(b.at, &b.events),
        })
        .collect()
}

/// Replays `log` and checks the produced commands against the logged ones,
/// reporting the first divergence (batch index, expected and actual
/// commands) as a human-readable error.
pub fn verify(log: &EventLog) -> Result<(), String> {
    let replayed = replay(log);
    for (i, (want, got)) in log.batches.iter().zip(&replayed).enumerate() {
        if want.commands != got.commands {
            return Err(format!(
                "batch {i} (at {}) diverged:\n  logged:\n{}  replayed:\n{}",
                want.at,
                render_commands(&want.commands),
                render_commands(&got.commands),
            ));
        }
    }
    Ok(())
}

fn render_commands(commands: &[Command]) -> String {
    let mut s = String::new();
    for c in commands {
        let _ = writeln!(s, "    ! {c}");
    }
    s
}

/// Renders batches as a stable, line-oriented transcript: one `@tick`
/// header per batch, `>` lines for events, `!` lines for commands. The
/// format is hand-written (not `Debug`-derived) so the checked-in golden
/// only changes when the *decisions* change.
pub fn transcript(batches: &[LoggedBatch]) -> String {
    let mut s = String::new();
    for b in batches {
        let _ = writeln!(s, "@{}", b.at);
        for e in &b.events {
            let _ = writeln!(s, "  > {e}");
        }
        for c in &b.commands {
            let _ = writeln!(s, "  ! {c}");
        }
    }
    s
}
