//! Table II bench — first-run kernel profiling cost.
//!
//! Slate profiles each kernel once and caches the result; this bench
//! measures how much that first run costs per benchmark (it must be cheap —
//! the paper counts it as offline). The Table II figures themselves are
//! regenerated and shape-checked in the setup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slate_core::profile::profile_kernel;
use slate_gpu_sim::device::DeviceConfig;
use slate_harness::table2;
use slate_kernels::workload::Benchmark;

fn bench(c: &mut Criterion) {
    let cfg = DeviceConfig::titan_xp();

    let (_, report) = table2::run(&cfg);
    println!("{}", report.to_text());
    assert!(report.all_pass(), "Table II regressed");

    let mut g = c.benchmark_group("table2_profile_kernel");
    g.sample_size(30);
    for b in Benchmark::ALL {
        let app = b.app();
        g.bench_with_input(BenchmarkId::from_parameter(b.abbrev()), &app, |bch, app| {
            bch.iter(|| profile_kernel(&cfg, &app.perf, app.blocks_per_launch));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
