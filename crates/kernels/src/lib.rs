//! # slate-kernels
//!
//! The benchmark kernels of the Slate paper's evaluation (Table II), each
//! provided in two coupled forms:
//!
//! 1. a **functional Rust body** ([`kernel::GpuKernel::run_block`]) that
//!    computes real results against simulated device memory — this is what
//!    makes Slate's transformation-correctness claims testable; and
//! 2. a **calibrated performance profile**
//!    ([`slate_gpu_sim::perf::KernelPerf`]) that drives the fluid-rate
//!    simulator so solo runs reproduce the paper's Table II figures
//!    (GFLOP/s, request bandwidth, intensity class).
//!
//! | Benchmark | Source | Compute | Memory | GFLOP/s | GB/s |
//! |-----------|--------|---------|--------|---------|------|
//! | BlackScholes (BS) | CUDA samples | Med | Med | 161.3 | 401.5 |
//! | Gaussian (GS) | Rodinia | Low | Med | 19.6 | 340.9 |
//! | SGEMM (MM) | CUDA samples | High | Med | 1525 | 403.5 |
//! | QuasiRandom (RG) | CUDA samples | Low | Low | 4.2 | 71.6 |
//! | Transpose (TR) | CUDA samples | Low | High | 0.0 | 568.6 |
//!
//! plus the `stream` read benchmark behind Fig. 1, and the LLM serving
//! workload family (`prefill`/`decode` with an [`workload::SloClass`] per
//! session) used by the SLO-aware scheduling experiments:
//!
//! | Benchmark | Compute | Memory | GFLOP/s | GB/s |
//! |-----------|---------|--------|---------|------|
//! | LlmPrefill (PF) | High | Low | 1500 | 94 |
//! | LlmDecode (DC) | Med | High | 250 | 535 |

#![warn(missing_docs)]

pub mod blackscholes;
pub mod decode;
pub mod gaussian;
pub mod grid;
pub mod kernel;
pub mod prefill;
pub mod quasirandom;
pub mod sgemm;
pub mod stream;
pub mod transpose;
pub mod workload;

pub use grid::{BlockCoord, GridDim};
pub use kernel::{run_parallel, run_reference, GpuKernel, KernelHandle};
pub use workload::{llm_trace, AppSpec, Benchmark, Intensity, LlmTraceCfg, SloClass};
