//! Grid geometry types.
//!
//! CUDA kernels are launched over a 1-D or 2-D grid of thread blocks
//! (`gridDim`) with a fixed inner block geometry. Slate's transformation
//! flattens the grid to 1-D and reconstructs the user-visible 2-D block
//! coordinate from a flat index (paper Fig. 3 / Listing 2); the helpers here
//! define that mapping in one place so the transformation, the functional
//! executor and the tests all agree on it.

use serde::{Deserialize, Serialize};

/// A 1-D or 2-D kernel grid (`z` is always 1 in the paper and here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridDim {
    /// Blocks along x.
    pub x: u32,
    /// Blocks along y (1 for a 1-D grid).
    pub y: u32,
}

impl GridDim {
    /// A 1-D grid of `x` blocks.
    pub fn d1(x: u32) -> Self {
        assert!(x > 0, "grid must have at least one block");
        Self { x, y: 1 }
    }

    /// A 2-D grid of `x` by `y` blocks.
    pub fn d2(x: u32, y: u32) -> Self {
        assert!(x > 0 && y > 0, "grid must have at least one block");
        Self { x, y }
    }

    /// Total number of blocks — `slateMax` after flattening.
    pub fn total_blocks(&self) -> u64 {
        self.x as u64 * self.y as u64
    }

    /// Whether the grid is 1-D.
    pub fn is_1d(&self) -> bool {
        self.y == 1
    }

    /// Maps a flat block index (Slate's `globIdx`) back to the user-visible
    /// 2-D block coordinate, row-major as in the paper's Listing 2
    /// (`x = globIdx % gridDim.x`, `y = globIdx / gridDim.x`).
    pub fn coord_of(&self, flat: u64) -> BlockCoord {
        debug_assert!(flat < self.total_blocks(), "flat {flat} out of grid");
        BlockCoord {
            x: (flat % self.x as u64) as u32,
            y: (flat / self.x as u64) as u32,
        }
    }

    /// Maps a user block coordinate to its flat index (inverse of
    /// [`GridDim::coord_of`]).
    pub fn flat_of(&self, coord: BlockCoord) -> u64 {
        debug_assert!(coord.x < self.x && coord.y < self.y);
        coord.y as u64 * self.x as u64 + coord.x as u64
    }
}

/// A user-visible block coordinate (`blockIdx` in the original kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockCoord {
    /// `blockIdx.x`.
    pub x: u32,
    /// `blockIdx.y`.
    pub y: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_blocks() {
        assert_eq!(GridDim::d1(7).total_blocks(), 7);
        assert_eq!(GridDim::d2(3, 5).total_blocks(), 15);
    }

    #[test]
    fn coord_flat_roundtrip() {
        let g = GridDim::d2(7, 5);
        for flat in 0..g.total_blocks() {
            let c = g.coord_of(flat);
            assert!(c.x < 7 && c.y < 5);
            assert_eq!(g.flat_of(c), flat);
        }
    }

    #[test]
    fn row_major_order() {
        let g = GridDim::d2(4, 2);
        assert_eq!(g.coord_of(0), BlockCoord { x: 0, y: 0 });
        assert_eq!(g.coord_of(3), BlockCoord { x: 3, y: 0 });
        assert_eq!(g.coord_of(4), BlockCoord { x: 0, y: 1 });
        assert_eq!(g.coord_of(7), BlockCoord { x: 3, y: 1 });
    }

    #[test]
    fn one_d_grid() {
        let g = GridDim::d1(10);
        assert!(g.is_1d());
        assert_eq!(g.coord_of(9), BlockCoord { x: 9, y: 0 });
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn rejects_empty_grid() {
        GridDim::d2(0, 3);
    }
}
