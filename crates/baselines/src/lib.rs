//! # slate-baselines
//!
//! The two baseline GPU multiprocessing runtimes the Slate paper compares
//! against, implemented over the `slate-gpu-sim` substrate:
//!
//! * [`cuda::CudaRuntime`] — vanilla CUDA: one context per process, device
//!   time-sliced between contexts at kernel-to-completion granularity;
//! * [`mps::MpsRuntime`] — NVIDIA MPS: daemon-funnelled single context with
//!   the hardware leftover policy (consecutive execution for large kernels,
//!   no context-switch tax).
//!
//! Both implement the shared [`runtime::Runtime`] trait that `slate-core`'s
//! Slate runtime also implements, so the harness can run the paper's
//! three-way comparison uniformly.

#![warn(missing_docs)]

pub mod cuda;
pub mod mps;
pub mod runtime;
pub mod serial;

pub use cuda::CudaRuntime;
pub use mps::MpsRuntime;
pub use runtime::{AppResult, RunOutcome, Runtime};
