//! Daemon concurrency integration: many clients, concurrent complementary
//! and conflicting launches, resize storms through the arbiter, and error
//! paths — all functional, with real threads and real atomics.

use slate_core::api::SlateClient;
use slate_core::daemon::SlateDaemon;
use slate_gpu_sim::buffer::GpuBuffer;
use slate_gpu_sim::device::DeviceConfig;
use slate_gpu_sim::perf::KernelPerf;
use slate_kernels::grid::{BlockCoord, GridDim};
use slate_kernels::kernel::GpuKernel;
use std::sync::Arc;

/// A kernel that adds `delta` to every element of its buffer, with a
/// configurable performance profile (to steer classification).
struct AddKernel {
    n: usize,
    delta: f32,
    perf: KernelPerf,
    buf: Arc<GpuBuffer>,
}

impl AddKernel {
    fn new(n: usize, delta: f32, perf: KernelPerf, buf: Arc<GpuBuffer>) -> Self {
        assert!(buf.len_words() >= n);
        Self {
            n,
            delta,
            perf,
            buf,
        }
    }
}

impl GpuKernel for AddKernel {
    fn name(&self) -> &str {
        &self.perf.name
    }
    fn grid(&self) -> GridDim {
        GridDim::d1((self.n as u32).div_ceil(64).max(1))
    }
    fn perf(&self) -> KernelPerf {
        self.perf.clone()
    }
    fn run_block(&self, b: BlockCoord) {
        let lo = b.x as usize * 64;
        for i in lo..(lo + 64).min(self.n) {
            self.buf.store_f32(i, self.buf.load_f32(i) + self.delta);
        }
    }
}

/// A compute-light profile that classifies L_C (corun filler).
fn lc_perf(name: &str) -> KernelPerf {
    let mut p = KernelPerf::synthetic(name, 2_000.0, 0.0);
    p.mem_request_bytes_per_block = 1_000.0;
    p.dram_bytes_inorder = 1_000.0;
    p.dram_bytes_scattered = 1_000.0;
    p.max_concurrent_blocks = Some(32);
    p
}

/// A memory-heavy profile that classifies H_M.
fn hm_perf(name: &str) -> KernelPerf {
    let mut p = KernelPerf::synthetic(name, 300.0, 0.0);
    p.mem_request_bytes_per_block = 40_000.0;
    p.dram_bytes_inorder = 33_000.0;
    p.dram_bytes_scattered = 34_000.0;
    p
}

fn run_client(
    daemon: &Arc<SlateDaemon>,
    user: &str,
    perf: KernelPerf,
    reps: usize,
    n: usize,
    delta: f32,
) -> Vec<f32> {
    let client = SlateClient::new(daemon.connect(user).unwrap());
    let ptr = client.malloc((n * 4) as u64).unwrap();
    client.upload_f32(ptr, &vec![0.0f32; n]).unwrap();
    for _ in 0..reps {
        let perf = perf.clone();
        client
            .launch_with(vec![ptr], 5, None, move |bufs| {
                Arc::new(AddKernel::new(n, delta, perf, bufs[0].clone())) as Arc<dyn GpuKernel>
            })
            .unwrap();
    }
    client.synchronize().unwrap();
    let out = client.download_f32(ptr, n).unwrap();
    client.free(ptr).unwrap();
    client.disconnect().unwrap();
    out
}

#[test]
fn complementary_clients_corun_correctly() {
    let daemon = SlateDaemon::start(DeviceConfig::tiny(4), 1 << 26);
    let n = 30_000usize;
    let reps = 6usize;
    std::thread::scope(|s| {
        let d1 = daemon.clone();
        let d2 = daemon.clone();
        let a = s.spawn(move || run_client(&d1, "hm-app", hm_perf("hm_add"), reps, n, 1.0));
        let b = s.spawn(move || run_client(&d2, "lc-app", lc_perf("lc_add"), reps, n, 2.0));
        let ra = a.join().unwrap();
        let rb = b.join().unwrap();
        // Sequential consistency of each client's own stream: exactly
        // `reps` increments applied, regardless of any co-running.
        for (i, v) in ra.iter().enumerate().step_by(997) {
            assert_eq!(*v, reps as f32, "hm element {i}");
        }
        for (i, v) in rb.iter().enumerate().step_by(997) {
            assert_eq!(*v, 2.0 * reps as f32, "lc element {i}");
        }
    });
    assert_eq!(daemon.launches_served(), 12);
    daemon.join();
}

#[test]
fn conflicting_clients_serialize_correctly() {
    // Two H_M clients: the policy refuses to co-run them; the arbiter
    // serializes. Results must still be exact.
    let daemon = SlateDaemon::start(DeviceConfig::tiny(4), 1 << 26);
    let n = 20_000usize;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let d = daemon.clone();
                s.spawn(move || run_client(&d, &format!("hm-{i}"), hm_perf("hm_add"), 5, n, 1.0))
            })
            .collect();
        for h in handles {
            let out = h.join().unwrap();
            for v in out.iter().step_by(499) {
                assert_eq!(*v, 5.0);
            }
        }
    });
    daemon.join();
}

#[test]
fn many_clients_stress_the_arbiter() {
    let daemon = SlateDaemon::start(DeviceConfig::tiny(4), 1 << 28);
    let n = 8_000usize;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for i in 0..6 {
            let d = daemon.clone();
            let perf = if i % 2 == 0 {
                hm_perf("hm_add")
            } else {
                lc_perf("lc_add")
            };
            let delta = 1.0 + i as f32;
            handles
                .push(s.spawn(move || run_client(&d, &format!("client-{i}"), perf, 4, n, delta)));
        }
        for (i, h) in handles.into_iter().enumerate() {
            let out = h.join().unwrap();
            let expect = 4.0 * (1.0 + i as f32);
            for v in out.iter().step_by(251) {
                assert_eq!(*v, expect, "client {i}");
            }
        }
    });
    assert_eq!(daemon.launches_served(), 24);
    assert_eq!(daemon.live_allocations(), 0);
    daemon.join();
}

#[test]
fn launch_error_surfaces_at_synchronize() {
    let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1 << 20);
    let client = SlateClient::new(daemon.connect("bad").unwrap());
    let good = client.malloc(4096).unwrap();
    // Launch referencing a bogus pointer: the daemon rejects it; the error
    // arrives at the synchronize fence.
    client
        .launch_with(
            vec![slate_core::SlatePtr(0xdeadbeef)],
            10,
            None,
            move |bufs| {
                Arc::new(AddKernel::new(16, 1.0, lc_perf("x"), bufs[0].clone()))
                    as Arc<dyn GpuKernel>
            },
        )
        .unwrap();
    let err = client.synchronize().unwrap_err();
    assert_eq!(
        err,
        slate_core::SlateError::InvalidPointer { ptr: 0xdeadbeef }
    );
    // The session is still usable afterwards.
    client.upload_f32(good, &[1.0, 2.0]).unwrap();
    assert_eq!(client.download_f32(good, 2).unwrap(), vec![1.0, 2.0]);
    client.disconnect().unwrap();
    daemon.join();
}

#[test]
fn profile_table_is_shared_across_sessions() {
    // The same kernel launched by two different clients is profiled once
    // (first run) and reused — observable through identical behaviour and
    // the daemon's launch accounting.
    let daemon = SlateDaemon::start(DeviceConfig::tiny(4), 1 << 24);
    let n = 5_000usize;
    let a = run_client(&daemon, "first", lc_perf("shared_kernel"), 2, n, 1.0);
    let b = run_client(&daemon, "second", lc_perf("shared_kernel"), 2, n, 3.0);
    assert!(a.iter().step_by(97).all(|&v| v == 2.0));
    assert!(b.iter().step_by(97).all(|&v| v == 6.0));
    assert_eq!(daemon.launches_served(), 4);
    daemon.join();
}
